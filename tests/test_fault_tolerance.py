"""Fault-tolerance tests: chaos in, byte-parity (or typed degradation) out.

The contract under test: with a seeded :class:`~repro.faults.FaultPlane`
injecting *recoverable* faults (fewer node deaths than the replication
factor), routed results stay byte-identical to a single store and no query
raises; with unrecoverable faults the router either raises a typed
:class:`~repro.serving.PartialResultError` or — under ``degraded_ok`` —
returns flagged partial results that name the lost partitions and are
never cached.
"""

import sqlite3
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import GroupPartitioner, SearchCluster
from repro.cluster.health import CLOSED, HALF_OPEN, OPEN, NodeHealth
from repro.faults import (
    FaultInjectedStore,
    FaultPlane,
    FaultRule,
    NodeDown,
    NodeFault,
)
from repro.mapreduce.errors import TaskFailure
from repro.mapreduce.runtime import RetryPolicy, TaskRunner
from repro.serving import (
    CachedResult,
    PartialResultError,
    PartitionUnavailableError,
    ResultCache,
)
from repro.store.memory import InMemoryStore
from repro.store.mutations import ReplaceFragment

from test_cluster import (
    QUERIES,
    QUERY,
    SPEC,
    URI,
    as_comparable,
    build_corpus,
    synthetic_corpus,
)


def build_chaos_cluster(store, nodes=4, replicas=2, seed=0, **kwargs):
    """A cluster wired to a fresh seeded plane (breaker never self-heals
    mid-test unless a test opts in)."""
    plane = FaultPlane(seed=seed)
    kwargs.setdefault("breaker_reset_seconds", 300.0)
    cluster = SearchCluster.build(
        QUERY, SPEC, URI, store, nodes=nodes, replicas=replicas,
        fault_plane=plane, **kwargs
    )
    return cluster, plane


def primary_of(cluster, partition):
    return cluster.assignment(partition).primary


# ----------------------------------------------------------------------
# the fault plane itself
# ----------------------------------------------------------------------
class TestFaultPlane:
    def test_wrapped_read_surface_raises(self):
        plane = FaultPlane()
        plane.add_rule(FaultRule(kind="error", node="n0", operation="postings"))
        store = plane.wrap_store("n0", InMemoryStore())
        assert isinstance(store, FaultInjectedStore)
        with pytest.raises(NodeFault):
            store.postings("burger")
        # Other operations and other nodes are untouched.
        assert store.document_frequencies() == {}
        other = plane.wrap_store("n1", InMemoryStore())
        assert list(other.postings("burger")) == []

    def test_writes_and_lifecycle_delegate_unwrapped(self):
        plane = FaultPlane()
        plane.kill_node("n0")
        store = plane.wrap_store("n0", InMemoryStore())
        # Death fences *reads*; writes and metadata still delegate so a
        # fenced node can be re-synced after revival.
        store.add_posting("burger", ("CuisineA", 5), 2)
        assert store.epoch == store.inner_store.epoch
        with pytest.raises(NodeDown):
            store.postings("burger")
        plane.revive_node("n0")
        assert [posting.document_id for posting in store.postings("burger")] == [("CuisineA", 5)]

    def test_nth_rule_is_deterministic_per_copy(self):
        def run():
            plane = FaultPlane(seed=9)
            plane.add_rule(FaultRule(kind="error", operation="postings", nth=2))
            store = plane.wrap_store("n0", InMemoryStore())
            outcomes = []
            for _ in range(4):
                try:
                    store.postings("burger")
                    outcomes.append("ok")
                except NodeFault:
                    outcomes.append("fault")
            return outcomes

        assert run() == ["ok", "fault", "ok", "ok"]
        assert run() == run()

    def test_every_and_times_rules(self):
        plane = FaultPlane()
        plane.add_rule(FaultRule(kind="error", operation="postings", every=2, times=2))
        store = plane.wrap_store("n0", InMemoryStore())
        outcomes = []
        for _ in range(8):
            try:
                store.postings("burger")
                outcomes.append("ok")
            except NodeFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "fault", "ok", "fault", "ok", "ok", "ok", "ok"]

    def test_kill_rule_marks_node_dead(self):
        plane = FaultPlane()
        plane.add_rule(FaultRule(kind="kill", node="n0", operation="postings", nth=3))
        store = plane.wrap_store("n0", InMemoryStore())
        store.postings("burger")
        store.postings("burger")
        with pytest.raises(NodeDown):
            store.postings("burger")
        assert plane.is_dead("n0")
        # Every subsequent read fails, whatever the operation.
        with pytest.raises(NodeDown):
            store.fragment_sizes_for([("CuisineA", 5)])

    def test_latency_rule_sleeps(self):
        plane = FaultPlane()
        plane.add_rule(
            FaultRule(kind="latency", operation="postings", latency_seconds=0.05)
        )
        store = plane.wrap_store("n0", InMemoryStore())
        started = time.perf_counter()
        store.postings("burger")
        assert time.perf_counter() - started >= 0.05

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind="explode")
        with pytest.raises(ValueError):
            FaultRule(kind="error", nth=1, every=2)
        with pytest.raises(ValueError):
            FaultRule(kind="latency")
        with pytest.raises(ValueError):
            FaultRule(kind="error", probability=1.5)

    def test_statistics_counts_injections(self):
        plane = FaultPlane(seed=4)
        plane.add_rule(FaultRule(kind="error", operation="postings", nth=1))
        store = plane.wrap_store("n0", InMemoryStore())
        with pytest.raises(NodeFault):
            store.postings("burger")
        store.postings("burger")
        stats = plane.statistics()
        assert stats["injected"]["error"] == 1
        assert stats["operations"] == 2
        assert stats["rules"][0]["fired"] == 1

    def test_shared_injector_contract_with_build_runner(self):
        """One plane faults build tasks through the PR 8 retry machinery."""
        plane = FaultPlane(seed=7)
        plane.add_rule(FaultRule(kind="error", operation="map", nth=1))
        runner = TaskRunner(RetryPolicy(max_attempts=3, failure_injector=plane.failure_injector()))

        def task(attempt):
            return f"done on attempt {attempt}"

        # Injected faults are TaskFailures, so the runner retries them.
        assert issubclass(NodeFault, TaskFailure)
        assert runner.run("map", 0, task) == "done on attempt 2"
        assert plane.statistics()["injected"]["error"] == 1


# ----------------------------------------------------------------------
# the circuit breaker
# ----------------------------------------------------------------------
class TestNodeHealth:
    def test_opens_after_threshold_consecutive_failures(self):
        health = NodeHealth("n0", failure_threshold=3, reset_seconds=300.0)
        assert health.state == CLOSED and health.available()
        health.record_failure()
        health.record_failure()
        health.record_success()  # success resets the consecutive counter
        health.record_failure()
        health.record_failure()
        assert health.state == CLOSED
        assert health.record_failure() == OPEN
        assert not health.available()

    def test_half_open_probe_and_recovery(self):
        clock = [0.0]
        health = NodeHealth("n0", failure_threshold=1, reset_seconds=5.0, clock=lambda: clock[0])
        health.record_failure()
        assert health.state == OPEN and not health.available()
        clock[0] = 5.1
        assert health.state == HALF_OPEN and health.available()
        health.record_success()
        assert health.state == CLOSED

    def test_half_open_failure_reopens_with_fresh_timer(self):
        clock = [0.0]
        health = NodeHealth("n0", failure_threshold=1, reset_seconds=5.0, clock=lambda: clock[0])
        health.record_failure()
        clock[0] = 5.1
        assert health.state == HALF_OPEN
        assert health.record_failure() == OPEN
        clock[0] = 9.0  # 3.9s after the re-trip: still open
        assert not health.available()
        clock[0] = 10.3
        assert health.available()
        assert health.as_dict()["opens_total"] == 2


# ----------------------------------------------------------------------
# topology: candidate selection, select_serving, promotion
# ----------------------------------------------------------------------
class TestTopologyFaults:
    def test_select_serving_raises_when_primary_dead_no_replica(self):
        """The satellite fix: no silent fallback to a dead primary."""
        store, _searcher = build_corpus(synthetic_corpus(40, seed=5))
        cluster, _plane = build_chaos_cluster(store, nodes=4, replicas=1)
        try:
            victim = primary_of(cluster, 0)
            for _ in range(3):
                cluster.note_failure(victim)
            with pytest.raises(PartitionUnavailableError) as excinfo:
                cluster.select_serving(0)
            assert excinfo.value.partition == 0
            assert victim in excinfo.value.tried
        finally:
            cluster.close()

    def test_serving_candidates_skip_open_circuit_nodes(self):
        store, _searcher = build_corpus(synthetic_corpus(40, seed=5))
        cluster, _plane = build_chaos_cluster(store, nodes=2, replicas=2)
        try:
            victim = primary_of(cluster, 0)
            full = {node for node, _h in cluster.serving_candidates(0, rotate=False)}
            assert victim in full and len(full) == 2
            for _ in range(3):
                cluster.note_failure(victim)
            remaining = {node for node, _h in cluster.serving_candidates(0, rotate=False)}
            assert remaining == full - {victim}
            node_id, _hosted = cluster.select_serving(0)
            assert node_id != victim
        finally:
            cluster.close()

    def test_dead_primary_promotes_fresh_replica(self):
        store, _searcher = build_corpus(synthetic_corpus(40, seed=5))
        cluster, _plane = build_chaos_cluster(store, nodes=2, replicas=2)
        try:
            victim = primary_of(cluster, 0)
            for _ in range(3):
                cluster.note_failure(victim)
            promoted = cluster.ensure_live_primary(0)
            assert promoted is not None and promoted != victim
            assignment = cluster.assignment(0)
            assert assignment.primary == promoted
            # The dead node demotes to replica so it can re-sync on revival.
            assert victim in assignment.replicas
            # Idempotent while the new primary is healthy.
            assert cluster.ensure_live_primary(0) is None
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# query-time failover
# ----------------------------------------------------------------------
class TestQueryFailover:
    def test_node_kill_with_replicas_keeps_byte_parity(self):
        """The headline acceptance: one dead node, replicas=2, zero drift."""
        fragments = synthetic_corpus(80, seed=7)
        store, searcher = build_corpus(fragments)
        for nodes in (2, 4):
            cluster, plane = build_chaos_cluster(store, nodes=nodes, replicas=2)
            try:
                plane.kill_node(primary_of(cluster, 0))
                for keywords in QUERIES:
                    single = searcher.search_detailed(keywords, k=10, size_threshold=100)
                    routed = cluster.router.search_detailed(keywords, k=10, size_threshold=100)
                    assert as_comparable(single.results) == as_comparable(routed.results)
                assert cluster.router.lifetime_statistics()["failovers"] > 0
            finally:
                cluster.close()

    def test_transient_error_bursts_keep_byte_parity(self):
        """nth-call error rules on stream reads exercise mid-merge failover."""
        fragments = synthetic_corpus(80, seed=7)
        store, searcher = build_corpus(fragments)
        cluster, plane = build_chaos_cluster(store, nodes=4, replicas=2, seed=3)
        try:
            victim = primary_of(cluster, 0)
            for operation in ("postings_for_many", "posting_blocks_for_many", "neighbors"):
                plane.add_rule(
                    FaultRule(kind="error", node=victim, operation=operation, nth=2)
                )
            for keywords in QUERIES:
                single = searcher.search_detailed(keywords, k=10, size_threshold=100)
                routed = cluster.router.search_detailed(keywords, k=10, size_threshold=100)
                assert as_comparable(single.results) == as_comparable(routed.results)
        finally:
            cluster.close()

    def test_unrecoverable_loss_raises_typed_error(self):
        store, _searcher = build_corpus(synthetic_corpus(60, seed=7))
        cluster, plane = build_chaos_cluster(store, nodes=4, replicas=1)
        try:
            lost_partition = 0
            plane.kill_node(primary_of(cluster, lost_partition))
            with pytest.raises(PartialResultError) as excinfo:
                cluster.router.search_detailed(["burger"], k=10, size_threshold=100)
            assert lost_partition in excinfo.value.missing_partitions
        finally:
            cluster.close()

    def test_degraded_ok_flags_partial_results(self):
        fragments = synthetic_corpus(60, seed=7)
        store, searcher = build_corpus(fragments)
        cluster, plane = build_chaos_cluster(
            store, nodes=4, replicas=1, degraded_ok=True
        )
        try:
            lost_partition = 0
            plane.kill_node(primary_of(cluster, lost_partition))
            detailed = cluster.router.search_detailed(["burger"], k=10, size_threshold=100)
            assert not detailed.statistics.complete
            assert detailed.statistics.missing_partitions == (lost_partition,)
            # The surviving partitions' results are a subset of the full
            # answer *by URL* — scores legitimately differ because the
            # degraded IDF sums DF over surviving partitions only.
            single = searcher.search_detailed(["burger"], k=100, size_threshold=100)
            full_urls = {result.url for result in single.results}
            assert {result.url for result in detailed.results} <= full_urls
        finally:
            cluster.close()

    def test_deadline_bounds_latency_spike(self):
        """A spiking copy is preempted and its replica answers instead."""
        fragments = synthetic_corpus(60, seed=7)
        store, searcher = build_corpus(fragments)
        cluster, plane = build_chaos_cluster(
            store, nodes=2, replicas=2, deadline_seconds=0.4
        )
        try:
            victim = primary_of(cluster, 0)
            # The spike is short enough that cluster.close() (which waits
            # for pool threads) stays fast, but far above the deadline.
            plane.add_rule(
                FaultRule(
                    kind="latency",
                    node=victim,
                    operation="posting_blocks_for_many",
                    latency_seconds=3.0,
                )
            )
            started = time.perf_counter()
            routed = cluster.router.search_detailed(["burger"], k=10, size_threshold=100)
            elapsed = time.perf_counter() - started
            assert elapsed < 2.5  # preempted well before the 3s spike ended
            single = searcher.search_detailed(["burger"], k=10, size_threshold=100)
            assert as_comparable(single.results) == as_comparable(routed.results)
        finally:
            cluster.close()

    def test_zero_faults_with_plane_keeps_parity_and_statistics(self):
        fragments = synthetic_corpus(80, seed=7)
        store, searcher = build_corpus(fragments)
        cluster, _plane = build_chaos_cluster(store, nodes=4, replicas=2)
        try:
            for keywords in QUERIES:
                single = searcher.search_detailed(keywords, k=10, size_threshold=100)
                routed = cluster.router.search_detailed(keywords, k=10, size_threshold=100)
                assert as_comparable(single.results) == as_comparable(routed.results)
                assert routed.statistics.complete
                assert routed.statistics.missing_partitions == ()
            assert cluster.router.lifetime_statistics()["failovers"] == 0
            health = cluster.statistics()["health"]
            assert all(row["state"] == "closed" for row in health.values())
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# the serving layer over a degraded cluster
# ----------------------------------------------------------------------
class TestDegradedServing:
    def test_partial_results_are_flagged_and_never_cached(self):
        store, _searcher = build_corpus(synthetic_corpus(60, seed=7))
        cluster, plane = build_chaos_cluster(
            store, nodes=4, replicas=1, degraded_ok=True
        )
        service = cluster.service(cache_size=64)
        try:
            lost_partition = 0
            plane.kill_node(primary_of(cluster, lost_partition))
            served = service.search("burger")
            assert not served.complete
            assert served.missing_partitions == (lost_partition,)
            assert not served.cached
            # The partial answer must not be served from cache afterwards.
            again = service.search("burger")
            assert not again.cached
            stats = service.statistics()
            assert stats["cache"]["hits"] == 0
        finally:
            service.close()

    def test_result_cache_refuses_partial_entries(self):
        cache = ResultCache(capacity=8)
        store = InMemoryStore()
        partial = CachedResult(
            results=(), keywords=("burger",), dependencies=frozenset(),
            epoch=store.epoch, complete=False, missing_partitions=(1,),
        )
        cache.put("key", partial)
        assert cache.get("key", store) is None
        complete = CachedResult(
            results=(), keywords=("burger",), dependencies=frozenset(), epoch=store.epoch
        )
        cache.put("key", complete)
        assert cache.get("key", store) is complete

    def test_gateway_marks_incomplete_pages(self):
        store, _searcher = build_corpus(synthetic_corpus(60, seed=7))
        cluster, plane = build_chaos_cluster(
            store, nodes=4, replicas=1, degraded_ok=True
        )
        service = cluster.service(cache_size=0)
        try:
            from repro.serving.gateway import SearchGateway

            gateway = SearchGateway(service)
            lost_partition = 0
            plane.kill_node(primary_of(cluster, lost_partition))
            page = gateway.generate_page(None, "q=burger&k=5")
            assert f"INCOMPLETE missing partitions {lost_partition}" in page.text
            assert "INCOMPLETE" in page.html
        finally:
            service.close()


# ----------------------------------------------------------------------
# the disk-store lock-retry satellite
# ----------------------------------------------------------------------
class TestDiskReadRetry:
    def test_reader_connect_retries_transient_lock(self, tmp_path, monkeypatch):
        from repro.store import disk as disk_module
        from repro.store.disk import DiskStore

        store = DiskStore(str(tmp_path / "corpus.sqlite"))
        store.add_posting("burger", ("CuisineA", 5), 2)
        store.finalize()
        attempts = []
        real_connect = sqlite3.connect

        def flaky_connect(*args, **kwargs):
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is locked")
            return real_connect(*args, **kwargs)

        monkeypatch.setattr(disk_module.sqlite3, "connect", flaky_connect)
        done = []

        def read():
            done.append(store.document_frequencies())

        # A fresh thread has no pooled reader, so it must connect (and
        # survive the two injected lock errors).
        thread = threading.Thread(target=read)
        thread.start()
        thread.join(timeout=10.0)
        assert done == [{"burger": 1}]
        assert len(attempts) == 3
        store.close()

    def test_reader_connect_gives_up_on_other_errors(self, tmp_path, monkeypatch):
        from repro.store import disk as disk_module
        from repro.store.disk import DiskStore

        store = DiskStore(str(tmp_path / "corpus.sqlite"))
        store.add_posting("burger", ("CuisineA", 5), 2)
        store.finalize()
        monkeypatch.setattr(
            disk_module.sqlite3,
            "connect",
            lambda *a, **k: (_ for _ in ()).throw(sqlite3.OperationalError("no such table")),
        )
        failures = []

        def read():
            try:
                store.document_frequencies()
            except sqlite3.OperationalError as error:
                failures.append(str(error))

        thread = threading.Thread(target=read)
        thread.start()
        thread.join(timeout=10.0)
        assert failures == ["no such table"]
        monkeypatch.undo()
        store.close()


# ----------------------------------------------------------------------
# the chaos-parity property
# ----------------------------------------------------------------------
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large, HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=20, max_value=70),
    nodes=st.sampled_from([2, 4]),
    kill_choice=st.integers(min_value=0, max_value=3),
    keywords=st.lists(
        st.sampled_from(["burger", "coffee", "thai", "spicy", "vegan", "missing"]),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    k=st.integers(min_value=1, max_value=15),
)
def test_property_recoverable_chaos_is_invisible(seed, count, nodes, kill_choice, keywords, k):
    """Fewer deaths than the replication factor -> byte-identical results."""
    fragments = synthetic_corpus(count, seed=seed)
    store, searcher = build_corpus(fragments)
    cluster, plane = build_chaos_cluster(store, nodes=nodes, replicas=2, seed=seed)
    try:
        # Kill one node: replicas=2 tolerates exactly one death per
        # partition, so this is the largest strictly-recoverable fault.
        victim = f"node-{kill_choice % nodes}"
        plane.kill_node(victim)
        single = searcher.search_detailed(keywords, k=k, size_threshold=100)
        routed = cluster.router.search_detailed(keywords, k=k, size_threshold=100)
        assert as_comparable(single.results) == as_comparable(routed.results)
        assert routed.statistics.complete
    finally:
        cluster.close()


# ----------------------------------------------------------------------
# cached-DF survival: warm term statistics beat a dead partition
# ----------------------------------------------------------------------
class TestCachedDfSurvival:
    def test_warm_query_survives_dead_unconsulted_partition(self):
        """At replicas=1, a query whose keywords are absent from the dead
        node's partitions answers complete: the warm term-stats cache skips
        the DF scatter and the zero bounds prune the dead partitions before
        any stream opens — the always-scatter router failed 100% of these."""
        fragments = synthetic_corpus(60, seed=7)
        store, searcher = build_corpus(fragments)
        cluster, plane = build_chaos_cluster(store, nodes=4, replicas=1)
        try:
            router = cluster.router
            victim = primary_of(cluster, 0)
            victim_partitions = {
                partition
                for partition in range(cluster.partition_count)
                if primary_of(cluster, partition) == victim
            }
            partitioner = GroupPartitioner(QUERY, cluster.partition_count)
            safe = next(
                identifier
                for identifier in sorted(fragments)
                if partitioner.partition_of(identifier) not in victim_partitions
            )
            # Plant a keyword that lives only in a partition the victim does
            # not host — routed through both stores so parity holds.
            burst = [
                ReplaceFragment(
                    safe, tuple(fragments[safe].items()) + (("survivor", 3),)
                )
            ]
            store.apply_mutations(burst)
            cluster.store.apply_mutations(burst)
            single = searcher.search_detailed(["survivor"], k=10, size_threshold=100)
            warm = router.search_detailed(["survivor"], k=10, size_threshold=100)
            assert as_comparable(warm.results) == as_comparable(single.results)
            plane.kill_node(victim)
            survived = router.search_detailed(["survivor"], k=10, size_threshold=100)
            assert survived.statistics.complete
            assert survived.statistics.df_cache_hits == 1
            assert survived.statistics.partitions_pruned >= 1
            assert as_comparable(survived.results) == as_comparable(single.results)
            # Control: a query that does consult the dead partition still
            # raises the typed partial-result error (every fragment holds
            # "burger", so partition 0 is always a contender).
            with pytest.raises(PartialResultError):
                router.search_detailed(["burger"], k=10, size_threshold=100)
        finally:
            cluster.close()

    def test_cold_query_on_dead_partition_still_degrades(self):
        """Without a warm cache the DF scatter touches the dead partition:
        the torn read must degrade (or raise), never poison the cache."""
        fragments = synthetic_corpus(60, seed=7)
        store, _searcher = build_corpus(fragments)
        cluster, plane = build_chaos_cluster(
            store, nodes=4, replicas=1, degraded_ok=True
        )
        try:
            router = cluster.router
            plane.kill_node(primary_of(cluster, 0))
            degraded = router.search_detailed(["burger"], k=10, size_threshold=100)
            assert not degraded.statistics.complete
            # the torn DF read was not recorded: the next query re-scatters
            again = router.search_detailed(["burger"], k=10, size_threshold=100)
            assert again.statistics.df_cache_misses == 1
            assert "burger" not in router.term_stats
        finally:
            cluster.close()
