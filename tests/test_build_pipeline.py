"""Parity + fault-injection suite pinning the distributed build pipeline.

The contract under test (``repro.build``): a distributed crawl→index build —
partitioned map tasks, sorted-run reduce tasks, parallel per-shard bulk loads,
final merge — produces output **byte-identical** to a single-process build
over the same corpus, for every partitioning, on every store backend, and
even when map/reduce/load workers are killed mid-run and retried.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.build import BuildPipeline, BuildPipelineError, shard_path
from repro.core.crawler import PartitionedCrawlFrontier
from repro.core.engine import DashEngine
from repro.core.fragments import derive_fragments
from repro.datasets import SyntheticCorpus, build_fooddb
from repro.datasets.fooddb import fooddb_search_query
from repro.mapreduce import RetryPolicy, TaskFailure
from repro.mapreduce.errors import JobError
from repro.store import DiskStore, InMemoryStore
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec

SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
URI = "www.example.com/Search"


def fooddb_application(database):
    return WebApplication(
        name="Search",
        uri=URI,
        query=fooddb_search_query(database),
        query_string_spec=SPEC,
    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
class ListSource:
    """A partitionable corpus source over an in-memory fragment list."""

    def __init__(self, fragments):
        self.fragments = list(fragments)

    def __iter__(self):
        return iter(self.fragments)

    def partitions(self, count):
        return [
            (lambda index=index: iter(self.fragments[index::count]))
            for index in range(count)
        ]


def naive_build(fragments, store):
    """The single-process reference: per-posting loads into one store."""
    for identifier, term_frequencies in fragments:
        store.touch_fragment(identifier)
        for keyword, occurrences in term_frequencies.items():
            store.add_posting(keyword, identifier, occurrences)
    store.finalize()
    return store


def dump_disk(store):
    """Every logical row of a disk store's index (bytes included)."""
    blocks = store._connection.execute(
        "SELECT keyword, block_no, count, max_occurrences, max_weight, entries "
        "FROM posting_blocks ORDER BY keyword, block_no"
    ).fetchall()
    fragments = store._connection.execute(
        "SELECT id, size FROM fragments ORDER BY id"
    ).fetchall()
    terms = store._connection.execute(
        "SELECT fragment, terms FROM fragment_terms ORDER BY fragment"
    ).fetchall()
    return blocks, fragments, terms


def postings_view(store, keywords):
    return {
        keyword: [
            (posting.document_id, posting.term_frequency)
            for posting in store.postings(keyword)
        ]
        for keyword in keywords
    }


# ----------------------------------------------------------------------
# the synthetic corpus generator
# ----------------------------------------------------------------------
class TestSyntheticCorpus:
    def test_deterministic_across_instances(self):
        first = list(SyntheticCorpus(300, seed=21))
        second = list(SyntheticCorpus(300, seed=21))
        assert first == second
        assert list(SyntheticCorpus(300, seed=22)) != first

    def test_random_access_matches_iteration(self):
        corpus = SyntheticCorpus(100, seed=5)
        assert [corpus.fragment(index) for index in range(len(corpus))] == list(corpus)

    def test_partitions_cover_the_corpus_disjointly(self):
        corpus = SyntheticCorpus(120, seed=9)
        whole = dict(corpus)
        seen = {}
        for stream in corpus.partitions(3):
            for identifier, term_frequencies in stream():
                assert identifier not in seen
                seen[identifier] = term_frequencies
        assert seen == whole

    def test_identifiers_are_unique(self):
        corpus = SyntheticCorpus(500, seed=1)
        identifiers = [identifier for identifier, _tf in corpus]
        assert len(identifiers) == len(set(identifiers)) == 500


# ----------------------------------------------------------------------
# the parity property: distributed == single-process, byte for byte
# ----------------------------------------------------------------------
keywords_strategy = st.sampled_from(
    ["burger", "noodle", "coffee", "spicy", "crispy", "kw1", "kw2", "kw3"]
)
vectors = st.dictionaries(keywords_strategy, st.integers(min_value=1, max_value=5), max_size=6)
corpora = st.lists(vectors, min_size=1, max_size=12).map(
    lambda vs: [((f"cuisine{i:03d}", 5 + i), v) for i, v in enumerate(vs)]
)

RELAXED = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestDistributedBuildParity:
    @RELAXED
    @given(fragments=corpora)
    def test_memory_target_matches_single_build(self, fragments):
        reference = naive_build(fragments, InMemoryStore())
        keywords = {kw for _id, tf in fragments for kw in tf}
        expected = postings_view(reference, keywords)
        for reduce_tasks in (1, 2, 4):
            store = InMemoryStore()
            BuildPipeline(
                ListSource(fragments), map_tasks=3, reduce_tasks=reduce_tasks, workers=1
            ).run(store)
            assert postings_view(store, keywords) == expected, reduce_tasks
            assert store.fragment_sizes() == reference.fragment_sizes()

    @RELAXED
    @given(fragments=corpora)
    def test_disk_target_matches_single_build_byte_for_byte(self, fragments, tmp_path_factory):
        base = tmp_path_factory.mktemp("parity")
        reference = naive_build(fragments, DiskStore(str(base / "ref.sqlite")))
        try:
            expected = dump_disk(reference)
        finally:
            reference.close()
        for reduce_tasks in (1, 2, 4):
            store = DiskStore(str(base / f"dist-{reduce_tasks}.sqlite"))
            try:
                BuildPipeline(
                    ListSource(fragments),
                    map_tasks=3,
                    reduce_tasks=reduce_tasks,
                    workers=1,
                ).run(store)
                assert dump_disk(store) == expected, reduce_tasks
            finally:
                store.close()

    def test_synthetic_corpus_parity_across_partitionings(self, tmp_path):
        corpus = SyntheticCorpus(400, seed=13)
        reference = naive_build(corpus, DiskStore(str(tmp_path / "ref.sqlite")))
        expected = dump_disk(reference)
        reference.close()
        for map_tasks, reduce_tasks in ((1, 1), (2, 4), (5, 3)):
            store = DiskStore(str(tmp_path / f"d-{map_tasks}-{reduce_tasks}.sqlite"))
            report = BuildPipeline(
                corpus, map_tasks=map_tasks, reduce_tasks=reduce_tasks, workers=1
            ).run(store)
            assert dump_disk(store) == expected, (map_tasks, reduce_tasks)
            assert report.fragments == 400
            assert report.postings > 0
            store.close()

    def test_empty_fragments_are_registered(self):
        fragments = [(("empty", 1), {}), (("full", 2), {"burger": 2})]
        store = InMemoryStore()
        BuildPipeline(ListSource(fragments), map_tasks=2, reduce_tasks=2, workers=1).run(store)
        assert store.fragment_size(("empty", 1)) == 0
        assert set(store.fragment_ids()) == {("empty", 1), ("full", 2)}

    def test_overlapping_partitions_are_rejected(self):
        class BadSource:
            def partitions(self, count):
                return [
                    (lambda: iter([(("dup", 1), {"burger": 1})]))
                    for _ in range(count)
                ]

        with pytest.raises(BuildPipelineError, match="two map partitions"):
            BuildPipeline(BadSource(), map_tasks=2, reduce_tasks=2, workers=1).run(
                InMemoryStore()
            )


# ----------------------------------------------------------------------
# engine-level parity (build_distributed vs build, attach via open unchanged)
# ----------------------------------------------------------------------
class TestEngineParity:
    QUERIES = (["burger"], ["coffee", "noodle"], ["star"], ["great", "burger"])

    @staticmethod
    def ranked(engine, keywords):
        return [
            (result.url, round(result.score, 9))
            for result in engine.search(keywords, k=5)
        ]

    def test_fooddb_memory_parity(self):
        database = build_fooddb()
        application = fooddb_application(database)
        single = DashEngine.build(
            application, database, algorithm="integrated", analyze_source=False
        )
        distributed = DashEngine.build_distributed(
            application, database, analyze_source=False, map_tasks=3,
            num_reduce_tasks=2, workers=1,
        )
        assert single.store.fragment_sizes() == distributed.store.fragment_sizes()
        for keywords in self.QUERIES:
            assert self.ranked(single, keywords) == self.ranked(distributed, keywords)
        assert distributed.statistics()["algorithm"] == "distributed"
        assert distributed.build_report.pipeline.fragments == len(
            distributed.store.fragment_ids()
        )

    def test_fooddb_disk_parity_and_open_attach(self, tmp_path):
        database = build_fooddb()
        application = fooddb_application(database)
        single_path = str(tmp_path / "single.sqlite")
        distributed_path = str(tmp_path / "distributed.sqlite")
        single = DashEngine.build(
            application, database, algorithm="integrated", analyze_source=False,
            store="disk", store_path=single_path,
        )
        distributed = DashEngine.build_distributed(
            application, database, analyze_source=False, map_tasks=2,
            num_reduce_tasks=4, workers=1, store="disk", store_path=distributed_path,
        )
        expected = {kws[0]: self.ranked(single, kws) for kws in self.QUERIES}
        for keywords in self.QUERIES:
            assert self.ranked(distributed, keywords) == expected[keywords[0]]
        # posting blocks and fragment rows byte-identical; term vectors are
        # semantically equal (the blob serializes items in insertion order,
        # which legitimately differs between keyword-major and fragment-major
        # load paths).
        single_blocks, single_fragments, _ = dump_disk(single.store)
        dist_blocks, dist_fragments, _ = dump_disk(distributed.store)
        assert single_blocks == dist_blocks
        assert single_fragments == dist_fragments
        for identifier in single.store.fragment_ids():
            assert single.store.fragment_term_frequencies(
                identifier
            ) == distributed.store.fragment_term_frequencies(identifier)
        single.store.close()
        distributed.store.close()

        # the built file serves through DashEngine.open unchanged
        reopened = DashEngine.open(distributed_path, application, database, analyze_source=False)
        for keywords in self.QUERIES:
            assert self.ranked(reopened, keywords) == expected[keywords[0]]
        reopened.store.close()

    def test_cluster_serves_distributed_build(self):
        database = build_fooddb()
        application = fooddb_application(database)
        engine = DashEngine.build_distributed(
            application, database, analyze_source=False, workers=1
        )
        service = engine.cluster(nodes=2, replicas=1, workers=2, default_k=5)
        try:
            direct = [result.url for result in engine.search(["burger"], k=5)]
            clustered = [result.url for result in service.search(["burger"], k=5)]
            assert clustered == direct
        finally:
            service.close()

    def test_populated_store_is_rejected(self, tmp_path):
        database = build_fooddb()
        application = fooddb_application(database)
        path = str(tmp_path / "populated.sqlite")
        DashEngine.build_distributed(
            application, database, analyze_source=False, workers=1,
            store="disk", store_path=path,
        ).store.close()
        with pytest.raises(Exception, match="already holds fragments"):
            DashEngine.build_distributed(
                application, database, analyze_source=False, workers=1,
                store="disk", store_path=path,
            )


# ----------------------------------------------------------------------
# the partitioned crawl frontier
# ----------------------------------------------------------------------
class TestPartitionedCrawlFrontier:
    def test_partitions_reproduce_the_reference_frontier(self):
        database = build_fooddb()
        query = fooddb_search_query(database)
        reference = {
            identifier: fragment.term_frequencies
            for identifier, fragment in derive_fragments(query, database).items()
        }
        frontier = PartitionedCrawlFrontier(query, database)
        for count in (1, 2, 5):
            seen = {}
            for stream in frontier.partitions(count):
                for identifier, term_frequencies in stream():
                    assert identifier not in seen, "partitions must be disjoint"
                    seen[identifier] = term_frequencies
            assert seen == reference, count

    def test_invalid_partition_count(self):
        database = build_fooddb()
        frontier = PartitionedCrawlFrontier(fooddb_search_query(database), database)
        with pytest.raises(ValueError):
            frontier.partitions(0)


# ----------------------------------------------------------------------
# fault injection: killed workers are retried to byte-identical output
# ----------------------------------------------------------------------
def _kill_once(phase, task_index=0):
    """An injector that kills one specific task's first attempt."""
    fired = []

    def injector(current_phase, index, attempt):
        if current_phase == phase and index == task_index and attempt == 1:
            fired.append((current_phase, index, attempt))
            raise TaskFailure(f"injected kill of {phase} task {index}")

    return injector, fired


class TestFaultInjection:
    @pytest.fixture()
    def corpus(self):
        return SyntheticCorpus(150, seed=4)

    @pytest.fixture()
    def expected(self, corpus, tmp_path):
        reference = naive_build(corpus, DiskStore(str(tmp_path / "ref.sqlite")))
        rows = dump_disk(reference)
        reference.close()
        return rows

    def _run_with_injector(self, corpus, tmp_path, injector, label, workdir=None):
        store = DiskStore(str(tmp_path / f"{label}.sqlite"))
        report = BuildPipeline(
            corpus,
            map_tasks=2,
            reduce_tasks=2,
            workers=1,
            workdir=workdir,
            retry_policy=RetryPolicy(max_attempts=3, failure_injector=injector),
        ).run(store)
        return store, report

    @pytest.mark.parametrize("phase", ["map", "reduce"])
    def test_killed_worker_is_retried_to_identical_output(
        self, corpus, expected, tmp_path, phase
    ):
        injector, fired = _kill_once(phase)
        store, report = self._run_with_injector(
            corpus, tmp_path, injector, f"kill-{phase}"
        )
        assert fired == [(phase, 0, 1)]
        assert report.retries == {phase: 1}
        assert dump_disk(store) == expected
        store.close()

    def test_killed_load_worker_leaves_no_torn_shard(self, corpus, expected, tmp_path):
        # kill between staging and finalize — the worst moment: the shard
        # file exists and is full of staged rows, but finalize() never ran.
        workdir = str(tmp_path / "work")
        injector, fired = _kill_once("load:finalize", task_index=1)
        store, report = self._run_with_injector(
            corpus, tmp_path, injector, "kill-load", workdir=workdir
        )
        assert fired == [("load:finalize", 1, 1)]
        assert report.retries == {"load": 1}
        assert dump_disk(store) == expected
        leftovers = [
            name
            for name in os.listdir(workdir)
            if name.endswith(".building") or name.endswith(".tmp")
        ]
        assert leftovers == []
        store.close()

    def test_exhausted_retries_never_publish_a_shard(self, corpus, tmp_path):
        # every attempt of load task 0 dies mid-load: the build must fail
        # loudly AND leave no partially-loaded shard file behind.
        workdir = str(tmp_path / "work")

        def injector(phase, index, attempt):
            if phase == "load:finalize" and index == 0:
                raise TaskFailure("persistent crash")

        store = DiskStore(str(tmp_path / "target.sqlite"))
        with pytest.raises(JobError, match="load task 0 failed 2 attempts"):
            BuildPipeline(
                corpus,
                map_tasks=2,
                reduce_tasks=2,
                workers=1,
                workdir=workdir,
                retry_policy=RetryPolicy(max_attempts=2, failure_injector=injector),
            ).run(store)
        assert not os.path.exists(shard_path(workdir, 0)), "torn shard published"
        assert not os.path.exists(os.path.join(workdir, "shard-0.building"))
        # the target store was never touched
        assert store.fragment_count() == 0
        store.close()

    def test_memory_target_fault_injection(self, corpus):
        reference = naive_build(corpus, InMemoryStore())
        for phase in ("map", "reduce", "load", "load:finalize"):
            injector, fired = _kill_once(phase)
            store = InMemoryStore()
            report = BuildPipeline(
                corpus,
                map_tasks=2,
                reduce_tasks=2,
                workers=1,
                retry_policy=RetryPolicy(max_attempts=3, failure_injector=injector),
            ).run(store)
            assert fired, phase
            assert sum(report.retries.values()) == 1, phase
            assert store.fragment_sizes() == reference.fragment_sizes(), phase

    def test_real_bugs_are_not_retried(self, corpus, tmp_path):
        calls = []

        def injector(phase, index, attempt):
            if phase == "map" and index == 0:
                calls.append(attempt)
                raise ValueError("a real bug, not a crash")

        store = DiskStore(str(tmp_path / "bug.sqlite"))
        with pytest.raises(ValueError, match="a real bug"):
            BuildPipeline(
                corpus,
                map_tasks=2,
                reduce_tasks=2,
                workers=1,
                retry_policy=RetryPolicy(max_attempts=3, failure_injector=injector),
            ).run(store)
        assert calls == [1], "non-TaskFailure exceptions must not be retried"
        store.close()
