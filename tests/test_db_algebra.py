"""Unit tests for the relational-algebra operators."""

import pytest

from repro.db import (
    Attribute,
    AttributeType,
    QueryError,
    Relation,
    Schema,
    aggregate,
    cross_join,
    group_by,
    inner_join,
    left_outer_join,
    project,
    select,
)


def _restaurants(fooddb):
    return fooddb.relation("restaurant")


class TestSelectProject:
    def test_select_filters_records(self, fooddb):
        american = select(_restaurants(fooddb), lambda r: r["cuisine"] == "American")
        assert len(american) == 5

    def test_project_keeps_order_and_duplicates(self, fooddb):
        names = project(_restaurants(fooddb), ["name"])
        values = [record["name"] for record in names]
        assert values.count("Wandy's") == 2
        assert names.schema.attribute_names == ("name",)

    def test_project_unknown_attribute_raises(self, fooddb):
        with pytest.raises(QueryError):
            project(_restaurants(fooddb), ["nope"])


class TestJoins:
    def test_inner_join_drops_unmatched(self, fooddb):
        joined = inner_join(
            fooddb.relation("restaurant"), fooddb.relation("comment"), on=[("rid", "rid")]
        )
        # 6 comments, each matching exactly one restaurant.
        assert len(joined) == 6
        # the right-hand join key is dropped from the output schema
        assert joined.schema.attribute_names.count("rid") == 1

    def test_left_outer_join_pads_unmatched(self, fooddb):
        joined = left_outer_join(
            fooddb.relation("restaurant"), fooddb.relation("comment"), on=[("rid", "rid")]
        )
        # restaurants without comments (003, 005) still appear once each
        assert len(joined) == 8
        unmatched = [record for record in joined if record["comment"] is None]
        assert {record["name"] for record in unmatched} == {"Wandy's", "Thaifood"}

    def test_join_requires_keys(self, fooddb):
        with pytest.raises(QueryError):
            inner_join(fooddb.relation("restaurant"), fooddb.relation("comment"), on=[])

    def test_join_unknown_key_raises(self, fooddb):
        with pytest.raises(QueryError):
            inner_join(fooddb.relation("restaurant"), fooddb.relation("comment"), on=[("zzz", "rid")])

    def test_null_join_keys_never_match(self):
        schema_a = Schema("a", [Attribute("k", AttributeType.INT), Attribute("x")])
        schema_b = Schema("b", [Attribute("k", AttributeType.INT), Attribute("y")])
        left = Relation(schema_a, [[None, "left"], [1, "one"]])
        right = Relation(schema_b, [[None, "right"], [1, "uno"]])
        joined = inner_join(left, right, on=[("k", "k")])
        assert len(joined) == 1
        assert joined.records[0]["y"] == "uno"

    def test_cross_join_cardinality(self, fooddb):
        product = cross_join(fooddb.relation("customer"), fooddb.relation("region" if fooddb.has_relation("region") else "customer"))
        assert len(product) == len(fooddb.relation("customer")) ** 1 * len(fooddb.relation("customer"))

    def test_paper_example_three_way_join(self, fooddb):
        """(restaurant LEFT JOIN comment) LEFT JOIN customer reproduces Figure 5's rows."""
        joined = left_outer_join(
            left_outer_join(
                fooddb.relation("restaurant"), fooddb.relation("comment"), on=[("rid", "rid")]
            ),
            fooddb.relation("customer"),
            on=[("uid", "uid")],
        )
        assert len(joined) == 8
        wandys = [r for r in joined if r["rid"] == "004"]
        assert {r["uname"] for r in wandys} == {"Bill"}


class TestGroupingAndAggregation:
    def test_group_by(self, fooddb):
        groups = group_by(_restaurants(fooddb), ["cuisine"])
        assert set(groups) == {("American",), ("Thai",)}
        assert len(groups[("American",)]) == 5

    def test_group_by_unknown_attribute(self, fooddb):
        with pytest.raises(QueryError):
            group_by(_restaurants(fooddb), ["nope"])

    def test_aggregate_count(self, fooddb):
        counted = aggregate(_restaurants(fooddb), ["cuisine"], {"n": ("count", None)})
        by_cuisine = {record["cuisine"]: record["n"] for record in counted}
        assert by_cuisine == {"American": 5, "Thai": 2}

    def test_aggregate_min_max_sum(self, fooddb):
        stats = aggregate(
            _restaurants(fooddb),
            ["cuisine"],
            {"lo": ("min", "budget"), "hi": ("max", "budget"), "total": ("sum", "budget")},
        )
        american = next(record for record in stats if record["cuisine"] == "American")
        assert (american["lo"], american["hi"]) == (9, 18)
        assert american["total"] == 9 + 10 + 12 + 12 + 18

    def test_aggregate_unknown_function(self, fooddb):
        with pytest.raises(QueryError):
            aggregate(_restaurants(fooddb), ["cuisine"], {"x": ("median", "budget")})
