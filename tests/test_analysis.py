"""Tests for the web-application analyzer (data flow + symbolic execution)."""

import pytest

from repro.analysis import (
    ApplicationAnalyzer,
    DataFlowAnalysis,
    ServletSource,
    make_servlet_source,
    symbolic_sql,
)
from repro.analysis.analyzer import AnalysisError
from repro.analysis.symbolic import SymbolicExecutionError, evaluate_concatenation
from repro.datasets.fooddb import FOODDB_SEARCH_SERVLET_SOURCE
from repro.datasets.tpch import TPCH_QUERY_SQL


class TestServletSource:
    def test_class_name(self):
        source = ServletSource(FOODDB_SEARCH_SERVLET_SOURCE)
        assert source.class_name == "Search"

    def test_statement_splitting_respects_string_literals(self):
        source = ServletSource("String q = 'a; b'; int x = 1;")
        assert len(source) == 2

    def test_comments_are_stripped(self):
        source = ServletSource("// comment; with; semicolons\nint x = 1;")
        assert len(source) == 1

    def test_make_servlet_source_roundtrip_structure(self):
        text = make_servlet_source(
            "Probe", [("a", "alpha"), ("b", "beta")],
            "SELECT * FROM t WHERE x = $alpha AND y BETWEEN $beta AND $beta",
        )
        assert "public class Probe" in text
        assert "q.getParameter('a')" in text
        assert "executeQuery(Q)" in text

    def test_make_servlet_source_rejects_unknown_variable(self):
        with pytest.raises(ValueError):
            make_servlet_source("Probe", [("a", "alpha")], "SELECT * FROM t WHERE x = $ghost")


class TestDataFlow:
    def test_get_parameter_bindings(self):
        source = ServletSource(FOODDB_SEARCH_SERVLET_SOURCE)
        flow = DataFlowAnalysis.analyze(source)
        assert flow.field_variable_pairs() == (("c", "cuisine"), ("l", "min"), ("u", "max"))

    def test_copy_propagation(self):
        source = ServletSource(
            "String raw = q.getParameter('x'); String alias = raw; Q = 'SELECT';"
        )
        flow = DataFlowAnalysis.analyze(source)
        assert flow.field_of("alias") == "x"

    def test_untracked_variable(self):
        source = ServletSource(FOODDB_SEARCH_SERVLET_SOURCE)
        flow = DataFlowAnalysis.analyze(source)
        assert flow.field_of("cn") is None


class TestSymbolicExecution:
    def test_concatenation_with_symbols(self):
        result = evaluate_concatenation("'SELECT x WHERE a = ' + p", {"p"})
        assert result.text == "SELECT x WHERE a = $p"
        assert result.parameters == ("p",)

    def test_unknown_variable_raises(self):
        with pytest.raises(SymbolicExecutionError):
            evaluate_concatenation("'SELECT ' + mystery", {"p"})

    def test_quoted_symbol_normalisation(self):
        source = ServletSource(FOODDB_SEARCH_SERVLET_SOURCE)
        flow = DataFlowAnalysis.analyze(source)
        symbolic = symbolic_sql(source, flow.variables())
        normalized = symbolic.normalized_sql()
        assert "$cuisine" in normalized and '"$cuisine"' not in normalized

    def test_incremental_query_building(self):
        source = ServletSource(
            "String a = q.getParameter('a');"
            "Q = 'SELECT * FROM t WHERE ';"
            "Q = Q + 'x = ' + a;"
            "ResultSet r = s.executeQuery(Q);"
        )
        flow = DataFlowAnalysis.analyze(source)
        assert symbolic_sql(source, flow.variables()).text == "SELECT * FROM t WHERE x = $a"

    def test_missing_execute_query(self):
        source = ServletSource("String a = q.getParameter('a'); Q = 'SELECT';")
        with pytest.raises(SymbolicExecutionError):
            symbolic_sql(source, ["a"])


class TestApplicationAnalyzer:
    def test_analyze_search_servlet(self, analyzed_search, search_query):
        assert analyzed_search.name == "Search"
        assert analyzed_search.query.selection_attributes == search_query.selection_attributes
        assert analyzed_search.query_string_spec.fields == (
            ("c", "cuisine"), ("l", "min"), ("u", "max"),
        )

    def test_analyzed_query_evaluates_like_reference(self, fooddb, analyzed_search, search_query):
        bindings = {"cuisine": "American", "min": 10, "max": 15}
        recovered = analyzed_search.query.evaluate(fooddb, bindings)
        reference = search_query.evaluate(fooddb, bindings)
        assert len(recovered) == len(reference)

    def test_parameter_fields(self, analyzed_search):
        assert analyzed_search.parameter_fields() == {"cuisine": "c", "min": "l", "max": "u"}

    def test_to_web_application(self, fooddb, analyzed_search):
        app = analyzed_search.to_web_application("www.example.com/Search")
        page = app.generate_page(fooddb, "c=Thai&l=10&u=10")
        assert page.record_count == 2

    def test_analyzer_on_generated_tpch_servlets(self, tiny_tpch):
        analyzer = ApplicationAnalyzer(tiny_tpch)
        for name, sql in TPCH_QUERY_SQL.items():
            template = sql.replace("$r", "$r").replace("$min", "$min").replace("$max", "$max")
            source = make_servlet_source(
                name, [("r", "r"), ("lo", "min"), ("hi", "max")], template
            )
            analyzed = analyzer.analyze(source, name=name)
            assert analyzed.query.parameters() == ("r", "min", "max")
            assert analyzed.query_string_spec.field_names == ("r", "lo", "hi")

    def test_source_without_get_parameter(self, fooddb):
        with pytest.raises(AnalysisError):
            ApplicationAnalyzer(fooddb).analyze("public class X { Q = 'SELECT'; }")

    def test_source_with_unparseable_sql(self, fooddb):
        source = (
            "public class X { String a = q.getParameter('a');"
            " Q = 'DELETE FROM restaurant WHERE cuisine = ' + a;"
            " ResultSet r = s.executeQuery(Q); }"
        )
        with pytest.raises(AnalysisError):
            ApplicationAnalyzer(fooddb).analyze(source)

    def test_application_without_source(self, fooddb, search_application):
        from repro.webapp import WebApplication

        bare = WebApplication(
            name="Bare",
            uri="www.example.com/Bare",
            query=search_application.query,
            query_string_spec=search_application.query_string_spec,
            source=None,
        )
        with pytest.raises(AnalysisError):
            ApplicationAnalyzer(fooddb).analyze_application(bare)
