"""Cluster tests: routed scatter-gather must be byte-identical to one store.

The load-bearing property is exactness — the cluster is a *performance*
topology, never a semantic one.  Every suite here compares
``QueryRouter.search_detailed`` against a plain single-store
``TopKSearcher`` over the same corpus with ``as_comparable`` (URL, exact
float score, fragment tuple, size): no tolerance, no reranking slack.  The
hypothesis property drives random corpora, queries, mutation bursts and
rebalances through the comparison across 1/2/4 nodes on both the memory
and the disk backend.
"""

import itertools
import random
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import (
    ClusterStore,
    GroupPartitioner,
    HashRing,
    SearchCluster,
    TermStatsCache,
)
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.store.base import StoreError
from repro.store.memory import InMemoryStore
from repro.store.mutations import RemoveFragment, ReplaceFragment
from repro.webapp.request import QueryStringSpec

QUERY = fooddb_search_query(build_fooddb())
SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
URI = "www.example.com/Search"

VOCABULARY = [
    "burger", "fries", "coffee", "soup", "noodle", "spicy",
    "bland", "great", "awful", "crispy", "thai", "vegan",
]


def synthetic_corpus(count, seed=11, groups=None):
    """``count`` fragments in chained cuisine groups with a skewed vocabulary."""
    rng = random.Random(seed)
    groups = groups if groups is not None else max(1, count // 6)
    fragments = {}
    for index in range(count):
        identifier = (f"Cuisine{index % groups:03d}", 5 + index // groups)
        term_frequencies = {
            rng.choice(VOCABULARY): rng.randint(1, 4)
            for _ in range(rng.randint(2, 6))
        }
        term_frequencies.setdefault("burger", rng.randint(1, 2))
        fragments[identifier] = term_frequencies
    return fragments


def build_corpus(fragments):
    """One single-store corpus: (store, searcher) over ``fragments``."""
    store = InMemoryStore()
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    sizes = {identifier: index.fragment_size(identifier) for identifier in fragments}
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    searcher = TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))
    return store, searcher


def as_comparable(results):
    """Byte-identical comparison key: URL, exact score, fragments, size."""
    return [(r.url, r.score, r.fragments, r.size) for r in results]


def assert_parity(searcher, cluster, queries, k=10, size_threshold=100):
    for keywords in queries:
        single = searcher.search_detailed(keywords, k=k, size_threshold=size_threshold)
        routed = cluster.router.search_detailed(keywords, k=k, size_threshold=size_threshold)
        assert as_comparable(single.results) == as_comparable(routed.results), keywords


QUERIES = (
    ["burger"],
    ["coffee"],
    ["thai", "spicy"],
    ["burger", "awful", "vegan"],
    ["missing-keyword"],
    ["burger", "missing-keyword"],
)


# ----------------------------------------------------------------------
# partitioning invariants
# ----------------------------------------------------------------------
class TestPartitioning:
    def test_chains_never_cross_partitions(self):
        """Graph-adjacent fragments must share a partition (db-page locality)."""
        store, _searcher = build_corpus(synthetic_corpus(60, seed=3))
        partitioner = GroupPartitioner(QUERY, 4)
        for identifier in store.node_ids():
            for neighbor in store.neighbors(identifier):
                assert partitioner.partition_of(neighbor) == partitioner.partition_of(
                    identifier
                )

    def test_partitions_spread(self):
        partitioner = GroupPartitioner(QUERY, 4)
        fragments = synthetic_corpus(200, seed=9, groups=40)
        used = {partitioner.partition_of(identifier) for identifier in fragments}
        assert used == {0, 1, 2, 3}

    def test_partition_count_validated(self):
        with pytest.raises(ValueError):
            GroupPartitioner(QUERY, 0)

    def test_hash_ring_owners_distinct_and_clamped(self):
        ring = HashRing(("a", "b", "c"))
        owners = ring.nodes_for(("partition", 1), count=5)
        assert len(owners) == 3
        assert len(set(owners)) == 3

    def test_hash_ring_is_consistent(self):
        """Dropping one node only reassigns the keys that node owned."""
        before = HashRing(("a", "b", "c", "d"))
        after = HashRing(("a", "b", "c"))
        for key in range(64):
            primary = before.nodes_for(("partition", key))[0]
            if primary != "d":
                assert after.nodes_for(("partition", key))[0] == primary

    def test_hash_ring_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            HashRing(())
        with pytest.raises(ValueError):
            HashRing(("a", "a"))


# ----------------------------------------------------------------------
# the cluster store facade
# ----------------------------------------------------------------------
class TestClusterStore:
    def test_mutation_bursts_route_to_owning_partitions_only(self):
        store, _searcher = build_corpus(synthetic_corpus(40, seed=5))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=4)
        try:
            victim = store.fragment_ids()[0]
            owner = cluster.store.partition_of(victim)
            before = cluster.store.partition_epochs()
            cluster.store.apply_mutations(
                [ReplaceFragment(victim, (("burger", 9), ("zzz", 1)))]
            )
            after = cluster.store.partition_epochs()
            assert after[owner] > before[owner]
            for partition, epoch in after.items():
                if partition != owner:
                    assert epoch == before[partition]
            assert cluster.store.term_frequency("zzz", victim) == 1
        finally:
            cluster.close()

    def test_cross_partition_edge_is_rejected(self):
        store, _searcher = build_corpus(synthetic_corpus(40, seed=5))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=4)
        try:
            partitioner = cluster.partitioner
            identifiers = store.fragment_ids()
            crossing = next(
                (left, right)
                for left in identifiers
                for right in identifiers
                if partitioner.partition_of(left) != partitioner.partition_of(right)
            )
            with pytest.raises(StoreError):
                cluster.store.add_neighbor(*crossing)
        finally:
            cluster.close()

    def test_facade_epoch_matches_single_store(self):
        """populate + identical mutations keep facade/store epochs in lockstep."""
        fragments = synthetic_corpus(30, seed=7)
        store, _searcher = build_corpus(fragments)
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=3)
        try:
            assert cluster.store.epoch == store.epoch
            burst = [
                ReplaceFragment(
                    store.fragment_ids()[0], (("coffee", 2), ("fresh", 1))
                ),
                RemoveFragment(store.fragment_ids()[1]),
            ]
            store.apply_mutations(burst)
            cluster.store.apply_mutations(burst)
            assert cluster.store.epoch == store.epoch
            assert cluster.store.fragment_count() == store.fragment_count()
            assert cluster.store.document_frequencies() == store.document_frequencies()
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# routed search parity (deterministic matrix)
# ----------------------------------------------------------------------
class TestRoutedParity:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_routed_matches_single_store(self, nodes, backend, tmp_path):
        store, searcher = build_corpus(synthetic_corpus(90, seed=13))
        cluster = SearchCluster.build(
            QUERY, SPEC, URI, store,
            nodes=nodes, replicas=2, node_store=backend, store_dir=str(tmp_path),
        )
        try:
            assert_parity(searcher, cluster, QUERIES)
            for k in (1, 3, 25):
                assert_parity(searcher, cluster, (["burger"],), k=k)
            assert_parity(searcher, cluster, (["burger", "spicy"],), size_threshold=8)
        finally:
            cluster.close()

    def test_parity_survives_mutations_and_sync(self):
        fragments = synthetic_corpus(60, seed=17)
        store, searcher = build_corpus(fragments)
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=4, replicas=2)
        try:
            identifiers = store.fragment_ids()
            burst = [
                ReplaceFragment(identifiers[0], (("burger", 7),)),
                RemoveFragment(identifiers[1]),
                ReplaceFragment(("CuisineNEW", 5), (("noodle", 2), ("burger", 1))),
            ]
            store.apply_mutations(burst)
            cluster.store.apply_mutations(burst)
            # Store-level mutations do not maintain the graph (that is the
            # incremental maintainer's job); register the new fragment's
            # node on both sides the way the write path would.
            store.add_node(("CuisineNEW", 5), 2)
            cluster.store.add_node(("CuisineNEW", 5), 2)
            assert_parity(searcher, cluster, QUERIES)
            assert cluster.sync_replicas() > 0
            assert cluster.sync_replicas() == 0  # now fresh: idempotent
            assert_parity(searcher, cluster, QUERIES)
        finally:
            cluster.close()

    def test_parity_survives_rebalance(self):
        store, searcher = build_corpus(synthetic_corpus(60, seed=19))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=3)
        try:
            for partition in range(cluster.partition_count):
                primary = cluster.assignment(partition).primary
                target = next(n for n in cluster.nodes if n != primary)
                assert cluster.rebalance(partition, target) is True
                assert cluster.assignment(partition).primary == target
            assert_parity(searcher, cluster, QUERIES)
        finally:
            cluster.close()

    def test_rebalance_no_op_and_unknown_target(self):
        store, _searcher = build_corpus(synthetic_corpus(20, seed=23))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=2)
        try:
            primary = cluster.assignment(0).primary
            assert cluster.rebalance(0, primary) is False
            with pytest.raises(ValueError):
                cluster.rebalance(0, "node-99")
        finally:
            cluster.close()

    def test_rebalance_leaves_other_partitions_serving(self):
        """Moving one partition must not swap — or stall — any other copy."""
        store, searcher = build_corpus(synthetic_corpus(80, seed=29))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=4)
        try:
            moving = 0
            others_before = {
                partition: cluster.nodes[
                    cluster.assignment(partition).primary
                ].hosted(partition)
                for partition in range(1, cluster.partition_count)
            }
            stop = threading.Event()
            failures = []

            def keep_searching():
                while not stop.is_set():
                    routed = cluster.router.search_detailed(["burger"], k=5)
                    if not routed.results:
                        failures.append("empty result during rebalance")
                        return

            reader = threading.Thread(target=keep_searching)
            reader.start()
            try:
                target = next(
                    n for n in cluster.nodes if n != cluster.assignment(moving).primary
                )
                assert cluster.rebalance(moving, target) is True
            finally:
                stop.set()
                reader.join()
            assert not failures
            for partition, hosted in others_before.items():
                current = cluster.nodes[
                    cluster.assignment(partition).primary
                ].hosted(partition)
                assert current is hosted  # untouched, zero downtime
            assert_parity(searcher, cluster, QUERIES)
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# replica reads
# ----------------------------------------------------------------------
class TestReplicaReads:
    def test_round_robin_spreads_fresh_replica_reads(self):
        store, _searcher = build_corpus(synthetic_corpus(40, seed=31))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=3, replicas=2)
        try:
            for partition in range(cluster.partition_count):
                served = {
                    cluster.select_serving(partition)[0] for _ in range(6)
                }
                assignment = cluster.assignment(partition)
                assert served == {assignment.primary, *assignment.replicas}
        finally:
            cluster.close()

    def test_stale_replicas_are_skipped_until_synced(self):
        store, _searcher = build_corpus(synthetic_corpus(40, seed=37))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=3, replicas=2)
        try:
            victim = store.fragment_ids()[0]
            partition = cluster.store.partition_of(victim)
            cluster.store.apply_mutations([ReplaceFragment(victim, (("soup", 4),))])
            assignment = cluster.assignment(partition)
            served = {cluster.select_serving(partition)[0] for _ in range(6)}
            assert served == {assignment.primary}  # replicas stale, skipped
            assert cluster.sync_replicas(partition) == len(assignment.replicas)
            served = {cluster.select_serving(partition)[0] for _ in range(6)}
            assert served == {assignment.primary, *assignment.replicas}
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# fan-out statistics
# ----------------------------------------------------------------------
class TestFanOutStatistics:
    def test_router_reports_fanout_counters(self):
        store, _searcher = build_corpus(synthetic_corpus(120, seed=41))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=4)
        try:
            detailed = cluster.router.search_detailed(["burger"], k=1)
            statistics = detailed.statistics
            assert statistics.nodes_queried >= 1
            assert statistics.partials_merged == len(detailed.results) == 1
            # k=1 over a corpus where every partition matches: some partials
            # must have been materialized but never ranked.
            assert statistics.partials_discarded > 0
            lifetime = cluster.router.lifetime_statistics()
            assert lifetime["searches"] == 1
            assert lifetime["partials_discarded"] == statistics.partials_discarded
            assert lifetime["nodes_queried"] == statistics.nodes_queried
        finally:
            cluster.close()

    def test_single_store_searches_leave_fanout_counters_zero(self):
        _store, searcher = build_corpus(synthetic_corpus(20, seed=43))
        detailed = searcher.search_detailed(["burger"], k=3)
        assert detailed.statistics.nodes_queried == 0
        assert detailed.statistics.partials_merged == 0
        assert searcher.lifetime_statistics()["partials_discarded"] == 0


# ----------------------------------------------------------------------
# serving layer over the cluster
# ----------------------------------------------------------------------
class TestClusterServing:
    def test_engine_cluster_serves_cached_and_invalidates(self):
        from repro.core.engine import DashEngine
        from repro.webapp.application import WebApplication

        database = build_fooddb()
        application = WebApplication(
            name="Search",
            uri=URI,
            query=fooddb_search_query(database),
            query_string_spec=SPEC,
        )
        engine = DashEngine.build(
            application, database, algorithm="integrated", analyze_source=False
        )
        single = engine.serving(cache_size=32, workers=1, default_k=5)
        service = engine.cluster(nodes=2, replicas=2, cache_size=32, workers=2, default_k=5)
        try:
            for query in ("burger", "coffee thai"):
                expected = single.search(query)
                routed = service.search(query)
                assert as_comparable(expected.results) == as_comparable(routed.results)
            assert service.search("burger").cached is True
            fanout = service.statistics()["search"]
            assert fanout["nodes_queried"] > 0
            assert fanout["partials_merged"] > 0
            victim = service.cluster.store.fragment_ids()[0]
            service.cluster.store.apply_mutations([RemoveFragment(victim)])
            assert service.search("burger").cached is False
        finally:
            service.close()
            single.close()


# ----------------------------------------------------------------------
# the hypothesis property: routed ≡ single store, byte-identical
# ----------------------------------------------------------------------
corpus_fragments = st.dictionaries(
    st.tuples(
        st.sampled_from(["CuisineA", "CuisineB", "CuisineC", "CuisineD"]),
        st.integers(min_value=5, max_value=12),
    ),
    st.dictionaries(
        st.sampled_from(VOCABULARY),
        st.integers(min_value=1, max_value=5),
        min_size=1,
        max_size=5,
    ),
    min_size=1,
    max_size=24,
)
query_keywords = st.lists(
    st.sampled_from(VOCABULARY + ["absent"]), min_size=1, max_size=3
)

#: Unique per-example disk directories (tmp_path is shared across examples).
_example_ids = itertools.count()


@pytest.mark.parametrize("backend", ["memory", "disk"])
@given(
    fragments=corpus_fragments,
    keywords=query_keywords,
    k=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
def test_routed_cluster_equals_single_store(backend, fragments, keywords, k, tmp_path, data):
    """The tentpole property: scatter-gather is byte-identical to one store,
    across 1/2/4 nodes and both backends, through mutation bursts routed to
    the owning partitions and through a rebalance."""
    store, searcher = build_corpus(fragments)
    for nodes in (1, 2, 4):
        cluster = SearchCluster.build(
            QUERY, SPEC, URI, store,
            nodes=nodes, replicas=2, node_store=backend,
            store_dir=str(tmp_path / f"{backend}-{nodes}-{next(_example_ids)}"),
        )
        try:
            assert_parity(searcher, cluster, (keywords,), k=k)
            if nodes == 2:
                identifiers = store.fragment_ids()
                victim = data.draw(st.sampled_from(list(identifiers)), label="victim")
                burst = [
                    ReplaceFragment(victim, (("burger", 3), ("extra", 1))),
                    ReplaceFragment(("CuisineE", 6), (("coffee", 2),)),
                ]
                store.apply_mutations(burst)
                cluster.store.apply_mutations(burst)
                store.add_node(("CuisineE", 6), 1)
                cluster.store.add_node(("CuisineE", 6), 1)
                assert_parity(searcher, cluster, (keywords, ["burger"]), k=k)
                partition = data.draw(
                    st.integers(min_value=0, max_value=cluster.partition_count - 1),
                    label="partition",
                )
                primary = cluster.assignment(partition).primary
                target = next(n for n in cluster.nodes if n != primary)
                assert cluster.rebalance(partition, target) is True
                assert_parity(searcher, cluster, (keywords, ["burger"]), k=k)
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# the epoch-validated term-statistics cache and bound-aware pruning
# ----------------------------------------------------------------------
class TestTermStatsCache:
    def test_warm_query_skips_df_round(self):
        """Second identical query hits the cache: half the fan-out submits,
        byte-identical answer."""
        store, searcher = build_corpus(synthetic_corpus(60, seed=3))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=4)
        try:
            router = cluster.router
            cold = router.search_detailed(["burger", "thai"], k=10)
            cold_submits = router.lifetime_statistics()["fanout_submits"]
            assert cold.statistics.df_cache_misses == 2
            assert cold.statistics.df_cache_hits == 0
            warm = router.search_detailed(["burger", "thai"], k=10)
            warm_submits = router.lifetime_statistics()["fanout_submits"] - cold_submits
            assert warm.statistics.df_cache_hits == 2
            assert warm.statistics.df_cache_misses == 0
            # the cold query paid round 1 (every partition) + round 2; the
            # warm one paid round 2 alone
            assert warm_submits <= cold_submits - router.partition_count
            assert as_comparable(cold.results) == as_comparable(warm.results)
            single = searcher.search_detailed(["burger", "thai"], k=10)
            assert as_comparable(single.results) == as_comparable(warm.results)
        finally:
            cluster.close()

    def test_negative_entries_cache_unseen_keywords(self):
        store, _searcher = build_corpus(synthetic_corpus(40, seed=5))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=2)
        try:
            router = cluster.router
            cold = router.search_detailed(["nosuchterm"], k=5)
            assert cold.results == ()
            assert cold.statistics.df_cache_misses == 1
            warm = router.search_detailed(["nosuchterm"], k=5)
            assert warm.results == ()
            assert warm.statistics.df_cache_hits == 1
            # nothing anywhere: every partition pruned, no streams opened
            assert warm.statistics.partitions_pruned == router.partition_count
        finally:
            cluster.close()

    def test_mutation_invalidates_only_affected_keywords(self):
        fragments = {
            ("CuisineA", 5): {"burger": 2, "coffee": 1},
            ("CuisineA", 6): {"soup": 2},
            ("CuisineB", 5): {"thai": 3},
        }
        store, searcher = build_corpus(fragments)
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=2)
        try:
            router = cluster.router
            router.search_detailed(["coffee"], k=5)
            router.search_detailed(["thai"], k=5)
            assert "coffee" in router.term_stats and "thai" in router.term_stats
            burst = [ReplaceFragment(("CuisineA", 5), (("burger", 1),))]
            store.apply_mutations(burst)
            cluster.store.apply_mutations(burst)
            # write-through invalidation dropped the touched keywords only
            assert "coffee" not in router.term_stats
            assert "thai" in router.term_stats
            # the unaffected entry revalidates across the epoch move and hits
            warm = router.search_detailed(["thai"], k=5)
            assert warm.statistics.df_cache_hits == 1
            # the affected one re-scatters — and parity holds either way
            cold = router.search_detailed(["coffee"], k=5)
            assert cold.statistics.df_cache_misses == 1
            for keywords in (["coffee"], ["thai"], ["burger"]):
                single = searcher.search_detailed(keywords, k=5)
                routed = router.search_detailed(keywords, k=5)
                assert as_comparable(single.results) == as_comparable(routed.results)
        finally:
            cluster.close()

    def test_lru_eviction_bounds_occupancy(self):
        store, _searcher = build_corpus(synthetic_corpus(30, seed=9))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=2)
        try:
            cache = TermStatsCache(cluster.store, capacity=2)
            cache.record(
                [("a", 1, {}), ("b", 2, {0: 0.5}), ("c", 3, {1: 0.25})],
                cluster.store.epoch,
            )
            assert len(cache) == 2
            statistics = cache.statistics()
            assert statistics["evictions"] == 1
            assert "a" not in cache and "b" in cache and "c" in cache
        finally:
            cluster.close()

    def test_stale_entry_dropped_on_revalidation(self):
        """An unwired cache (no mutation listener) still never serves stale
        statistics: per-keyword epoch revalidation catches the move."""
        store, _searcher = build_corpus(synthetic_corpus(30, seed=9))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=2)
        try:
            cache = TermStatsCache(cluster.store, capacity=8)
            cache.record([("burger", 7, {0: 0.9})], cluster.store.epoch)
            victim = next(iter(store.fragment_ids()))
            burst = [ReplaceFragment(victim, (("burger", 5),))]
            store.apply_mutations(burst)
            cluster.store.apply_mutations(burst)
            assert cache.lookup(("burger",)) is None
            assert cache.statistics()["stale_drops"] == 1
        finally:
            cluster.close()

    def test_cluster_statistics_expose_cache_and_search_payloads(self):
        store, _searcher = build_corpus(synthetic_corpus(30, seed=9))
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=2)
        try:
            cluster.router.search_detailed(["burger"], k=5)
            payload = cluster.statistics()
            assert payload["term_stats_cache"]["misses"] >= 1
            assert payload["search"]["searches"] == 1
            assert "discard_ratio" in payload["search"]
            assert "partitions_pruned" in payload["search"]
        finally:
            cluster.close()


class TestPartitionPruning:
    def test_rare_keyword_prunes_partitions(self):
        """A keyword confined to one cuisine chain lets the router skip every
        other partition outright — cold and warm, with byte parity."""
        fragments = synthetic_corpus(60, seed=3)
        rare_group = next(iter(fragments))[0]
        for identifier in fragments:
            if identifier[0] == rare_group:
                fragments[identifier]["saffron"] = 3
        store, searcher = build_corpus(fragments)
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=4)
        try:
            router = cluster.router
            for _pass in ("cold", "warm"):
                routed = router.search_detailed(["saffron"], k=10)
                single = searcher.search_detailed(["saffron"], k=10)
                assert as_comparable(routed.results) == as_comparable(single.results)
                assert routed.statistics.partitions_pruned >= 1
            assert routed.statistics.df_cache_hits == 1
        finally:
            cluster.close()

    def test_pruned_partition_counters_stay_consistent(self):
        """Pruning must not disturb the per-stream counter identities the
        merged statistics are built from."""
        fragments = synthetic_corpus(60, seed=3)
        rare_group = next(iter(fragments))[0]
        for identifier in fragments:
            if identifier[0] == rare_group:
                fragments[identifier]["saffron"] = 3
        store, _searcher = build_corpus(fragments)
        cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=4)
        try:
            detailed = cluster.router.search_detailed(["saffron"], k=10)
            statistics = detailed.statistics
            assert statistics.seeds_scored + statistics.pruned_dequeues == (
                statistics.seed_fragments
            )
            assert statistics.complete
        finally:
            cluster.close()


@given(
    fragments=corpus_fragments,
    keywords=query_keywords,
    k=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_warm_stats_cache_parity_across_mutation_bursts(fragments, keywords, k, data):
    """The cache's correctness oracle: with the term-stats cache warm, routed
    results stay byte-identical to the single store through mutation bursts —
    the cache must never serve stale DFs or stale bounds."""
    store, searcher = build_corpus(fragments)
    cluster = SearchCluster.build(QUERY, SPEC, URI, store, nodes=2, replicas=1)
    try:
        queries = (keywords, ["burger"], ["burger", "absent"])
        assert_parity(searcher, cluster, queries, k=k)  # cold: fills the cache
        assert_parity(searcher, cluster, queries, k=k)  # warm: served from it
        warm = cluster.router.search_detailed(keywords, k=k)
        assert warm.statistics.df_cache_misses == 0
        assert warm.statistics.df_cache_hits > 0
        victim = data.draw(
            st.sampled_from(sorted(store.fragment_ids())), label="victim"
        )
        burst = [
            ReplaceFragment(victim, (("burger", 3), ("extra", 1))),
            ReplaceFragment(("CuisineE", 6), (("coffee", 2),)),
        ]
        store.apply_mutations(burst)
        cluster.store.apply_mutations(burst)
        store.add_node(("CuisineE", 6), 1)
        cluster.store.add_node(("CuisineE", 6), 1)
        assert_parity(searcher, cluster, queries + (["coffee"], ["extra"]), k=k)
        # warm again after the burst — still byte-identical
        assert_parity(searcher, cluster, queries + (["coffee"], ["extra"]), k=k)
    finally:
        cluster.close()
