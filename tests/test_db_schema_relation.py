"""Unit tests for schemas, records, relations and the database catalog."""

import pytest

from repro.db import (
    Attribute,
    AttributeType,
    Database,
    ForeignKey,
    IntegrityError,
    Record,
    Relation,
    Schema,
    SchemaError,
)


def make_schema():
    return Schema(
        "people",
        [
            Attribute("pid", AttributeType.INT),
            Attribute("name", AttributeType.STRING),
            Attribute("height", AttributeType.FLOAT),
            Attribute("born", AttributeType.DATE),
        ],
        primary_key=["pid"],
    )


# ----------------------------------------------------------------------
# attribute types
# ----------------------------------------------------------------------
class TestAttributeType:
    def test_int_coercion(self):
        assert AttributeType.INT.coerce("42") == 42

    def test_float_coercion(self):
        assert AttributeType.FLOAT.coerce("4.5") == 4.5

    def test_string_coercion(self):
        assert AttributeType.STRING.coerce(10) == "10"

    def test_date_coercion_from_string(self):
        assert AttributeType.DATE.coerce("1995-03-14") == "1995-03-14"

    def test_none_passes_through(self):
        assert AttributeType.INT.coerce(None) is None

    def test_bad_int_raises(self):
        with pytest.raises(SchemaError):
            AttributeType.INT.coerce("not-a-number")

    def test_bool_is_not_an_int(self):
        with pytest.raises(SchemaError):
            AttributeType.INT.coerce(True)

    def test_is_numeric(self):
        assert AttributeType.INT.is_numeric()
        assert AttributeType.FLOAT.is_numeric()
        assert not AttributeType.STRING.is_numeric()


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
class TestSchema:
    def test_attribute_lookup(self):
        schema = make_schema()
        assert schema.position_of("name") == 1
        assert schema.attribute("height").type is AttributeType.FLOAT

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            make_schema().position_of("age")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema("dup", [Attribute("a"), Attribute("a")])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema("t", [Attribute("a")], primary_key=["b"])

    def test_foreign_key_attribute_must_exist(self):
        with pytest.raises(SchemaError):
            Schema("t", [Attribute("a")], foreign_keys=[ForeignKey("b", "other", "x")])

    def test_subset(self):
        schema = make_schema().subset(["name", "pid"])
        assert schema.attribute_names == ("name", "pid")

    def test_concat_disambiguates_collisions(self):
        left = Schema("l", [Attribute("id"), Attribute("x")])
        right = Schema("r", [Attribute("id"), Attribute("y")])
        merged = left.concat(right)
        assert merged.attribute_names == ("id", "x", "r.id", "y")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("empty", [])


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
class TestRecord:
    def test_access_by_name_and_position(self):
        record = Record(make_schema(), [1, "Ada", 1.7, "1815-12-10"])
        assert record["name"] == "Ada"
        assert record[0] == 1

    def test_values_are_coerced(self):
        record = Record(make_schema(), ["7", "Alan", "1.8", "1912-06-23"])
        assert record["pid"] == 7
        assert record["height"] == 1.8

    def test_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Record(make_schema(), [1, "x"])

    def test_as_dict(self):
        record = Record(make_schema(), [1, "Ada", 1.7, "1815-12-10"])
        assert record.as_dict()["born"] == "1815-12-10"

    def test_text_values_skip_nulls_and_render_floats(self):
        schema = Schema("t", [Attribute("a", AttributeType.FLOAT), Attribute("b")])
        record = Record(schema, [4.0, None])
        assert record.text_values() == ["4"]

    def test_key(self):
        record = Record(make_schema(), [1, "Ada", 1.7, "1815-12-10"])
        assert record.key(["name", "pid"]) == ("Ada", 1)

    def test_get_with_default(self):
        record = Record(make_schema(), [1, "Ada", 1.7, "1815-12-10"])
        assert record.get("missing", "fallback") == "fallback"


# ----------------------------------------------------------------------
# relations
# ----------------------------------------------------------------------
class TestRelation:
    def test_insert_sequence_and_dict(self):
        relation = Relation(make_schema())
        relation.insert([1, "Ada", 1.7, "1815-12-10"])
        relation.insert({"pid": 2, "name": "Alan", "height": 1.8, "born": "1912-06-23"})
        assert len(relation) == 2

    def test_dict_missing_attribute_raises(self):
        relation = Relation(make_schema())
        with pytest.raises(SchemaError):
            relation.insert({"pid": 1})

    def test_distinct_values_sorted(self):
        relation = Relation(make_schema())
        relation.insert([2, "B", 1.0, "2000-01-01"])
        relation.insert([1, "A", 1.0, "2000-01-01"])
        relation.insert([1, "A2", 1.0, "2000-01-01"])
        assert relation.distinct_values("pid") == [1, 2]

    def test_filter_returns_new_relation(self):
        relation = Relation(make_schema())
        relation.insert([1, "Ada", 1.7, "1815-12-10"])
        relation.insert([2, "Alan", 1.8, "1912-06-23"])
        tall = relation.filter(lambda record: record["height"] > 1.75)
        assert len(tall) == 1
        assert len(relation) == 2

    def test_delete(self):
        relation = Relation(make_schema())
        relation.insert([1, "Ada", 1.7, "1815-12-10"])
        relation.insert([2, "Alan", 1.8, "1912-06-23"])
        removed = relation.delete(lambda record: record["pid"] == 1)
        assert removed == 1
        assert len(relation) == 1

    def test_approximate_bytes_positive(self):
        relation = Relation(make_schema())
        relation.insert([1, "Ada", 1.7, "1815-12-10"])
        assert relation.approximate_bytes() > 0


# ----------------------------------------------------------------------
# database catalog and integrity
# ----------------------------------------------------------------------
class TestDatabase:
    def _make_db(self):
        database = Database("testdb", enforce_integrity=True)
        database.create_relation(make_schema())
        database.create_relation(
            Schema(
                "pets",
                [Attribute("petid", AttributeType.INT), Attribute("owner", AttributeType.INT)],
                primary_key=["petid"],
                foreign_keys=[ForeignKey("owner", "people", "pid")],
            )
        )
        return database

    def test_insert_and_lookup(self):
        database = self._make_db()
        database.insert("people", [1, "Ada", 1.7, "1815-12-10"])
        assert len(database.relation("people")) == 1

    def test_duplicate_primary_key_rejected(self):
        database = self._make_db()
        database.insert("people", [1, "Ada", 1.7, "1815-12-10"])
        with pytest.raises(IntegrityError):
            database.insert("people", [1, "Dup", 1.6, "1900-01-01"])

    def test_foreign_key_enforced(self):
        database = self._make_db()
        with pytest.raises(IntegrityError):
            database.insert("pets", [1, 99])

    def test_foreign_key_satisfied(self):
        database = self._make_db()
        database.insert("people", [1, "Ada", 1.7, "1815-12-10"])
        database.insert("pets", [1, 1])
        assert len(database.relation("pets")) == 1

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            self._make_db().relation("nope")

    def test_duplicate_relation_rejected(self):
        database = self._make_db()
        with pytest.raises(SchemaError):
            database.create_relation(make_schema())

    def test_size_report_and_total_records(self):
        database = self._make_db()
        database.insert("people", [1, "Ada", 1.7, "1815-12-10"])
        report = database.size_report()
        assert report["people"]["records"] == 1
        assert database.total_records() == 1

    def test_delete_reindexes_primary_keys(self):
        database = self._make_db()
        database.insert("people", [1, "Ada", 1.7, "1815-12-10"])
        database.delete("people", lambda record: record["pid"] == 1)
        database.insert("people", [1, "Again", 1.7, "1815-12-10"])
        assert len(database.relation("people")) == 1

    def test_fooddb_matches_paper_row_counts(self, fooddb):
        assert len(fooddb.relation("restaurant")) == 7
        assert len(fooddb.relation("comment")) == 6
        assert len(fooddb.relation("customer")) == 5
