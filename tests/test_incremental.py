"""Tests for incremental fragment-index maintenance under database updates."""

import pytest

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import derive_fragments, fragment_sizes
from repro.core.incremental import IncrementalMaintainer, IncrementalMaintenanceError
from repro.datasets.fooddb import build_fooddb, fooddb_search_query


def _index_as_dict(index):
    return {
        keyword: tuple((tuple(p.document_id), p.term_frequency) for p in postings)
        for keyword, postings in index.iter_items()
    }


@pytest.fixture
def maintained():
    """A freshly built (database, query, index, graph, maintainer) bundle."""
    database = build_fooddb()
    query = fooddb_search_query(database)
    fragments = derive_fragments(query, database)
    index = InvertedFragmentIndex.from_fragments(fragments)
    graph = FragmentGraph.build(query, fragment_sizes(fragments))
    maintainer = IncrementalMaintainer(query, database, index, graph)
    return database, query, index, graph, maintainer


def _rebuilt_index(query, database):
    return InvertedFragmentIndex.from_fragments(derive_fragments(query, database))


class TestInserts:
    def test_insert_comment_updates_existing_fragment(self, maintained):
        database, query, index, graph, maintainer = maintained
        affected = maintainer.insert(
            "comment", ("207", "001", "120", "Great milkshake", "07/12")
        )
        assert affected == (("American", 10),)
        assert index.term_frequency("milkshake", ("American", 10)) == 1
        assert _index_as_dict(index) == _index_as_dict(_rebuilt_index(query, database))
        assert graph.keyword_count(("American", 10)) == index.fragment_size(("American", 10))

    def test_insert_restaurant_creates_new_fragment_and_graph_node(self, maintained):
        database, query, index, graph, maintainer = maintained
        affected = maintainer.insert("restaurant", ("008", "Pasta Palace", "Italian", 14, 4.6))
        assert affected == (("Italian", 14),)
        assert index.fragment_size(("Italian", 14)) > 0
        assert graph.has_fragment(("Italian", 14))
        assert graph.neighbors(("Italian", 14)) == ()
        assert _index_as_dict(index) == _index_as_dict(_rebuilt_index(query, database))

    def test_insert_restaurant_extends_existing_chain(self, maintained):
        database, query, index, graph, maintainer = maintained
        maintainer.insert("restaurant", ("009", "Grill House", "American", 11, 3.5))
        assert graph.are_connected(("American", 10), ("American", 11))
        assert graph.are_connected(("American", 11), ("American", 12))
        assert not graph.are_connected(("American", 10), ("American", 12))

    def test_insert_into_non_operand_relation_rejected(self, maintained):
        _database, _query, _index, _graph, maintainer = maintained
        with pytest.raises(IncrementalMaintenanceError):
            maintainer.insert("unrelated", ("x",))


class TestDeletes:
    def test_delete_comment_shrinks_fragment(self, maintained):
        database, query, index, _graph, maintainer = maintained
        before = index.fragment_size(("American", 12))
        affected = maintainer.delete("comment", lambda record: record["cid"] == "203")
        assert ("American", 12) in affected
        assert index.fragment_size(("American", 12)) < before
        assert _index_as_dict(index) == _index_as_dict(_rebuilt_index(query, database))

    def test_delete_last_restaurant_of_fragment_removes_node(self, maintained):
        database, query, index, graph, maintainer = maintained
        maintainer.delete("restaurant", lambda record: record["rid"] == "007")
        assert ("American", 9) not in index.fragment_ids()
        assert not graph.has_fragment(("American", 9))
        assert _index_as_dict(index) == _index_as_dict(_rebuilt_index(query, database))

    def test_delete_middle_fragment_reconnects_chain(self, maintained):
        database, query, _index, graph, maintainer = maintained
        maintainer.delete("restaurant", lambda record: record["budget"] == 10 and record["cuisine"] == "American")
        assert not graph.has_fragment(("American", 10))
        assert graph.are_connected(("American", 9), ("American", 12))

    def test_delete_nothing_is_a_noop(self, maintained):
        database, query, index, _graph, maintainer = maintained
        before = _index_as_dict(index)
        affected = maintainer.delete("comment", lambda record: False)
        assert affected == ()
        assert _index_as_dict(index) == before


class TestMaintenanceBookkeeping:
    def test_counters(self, maintained):
        _database, _query, _index, _graph, maintainer = maintained
        maintainer.insert("comment", ("208", "002", "171", "salty fries", "02/12"))
        maintainer.delete("comment", lambda record: record["cid"] == "208")
        assert maintainer.updates_applied == 2
        assert maintainer.fragments_touched >= 2

    def test_sequence_of_updates_stays_consistent_with_rebuild(self, maintained):
        database, query, index, _graph, maintainer = maintained
        maintainer.insert("restaurant", ("010", "Soup Stop", "Thai", 10, 4.0))
        maintainer.insert("comment", ("209", "010", "120", "lovely soup", "01/12"))
        maintainer.delete("comment", lambda record: record["cid"] == "201")
        maintainer.insert("customer", ("200", "Zoe"))
        maintainer.insert("comment", ("210", "005", "200", "spicy curry", "03/12"))
        assert _index_as_dict(index) == _index_as_dict(_rebuilt_index(query, database))
