"""Tests for the text substrate: tokenizer, TF/IDF and the inverted file."""

import pytest

from repro.text import InvertedIndex, TfIdfScorer, term_frequencies, tokenize
from repro.text.tokenizer import count_keywords, tokenize_values


class TestTokenizer:
    def test_basic_tokenization(self):
        assert tokenize("Burger experts by David on 06/10") == [
            "burger", "experts", "by", "david", "on", "06/10",
        ]

    def test_keeps_decimals_and_possessives(self):
        assert tokenize("Bond's Cafe 4.3") == ["bond's", "cafe", "4.3"]

    def test_lowercases(self):
        assert tokenize("American THAI") == ["american", "thai"]

    def test_empty_and_punctuation_only(self):
        assert tokenize("") == []
        assert tokenize("!!! --- ???") == []

    def test_paper_fragment_keyword_count(self):
        """Example 6: the (American, 9) fragment contains eight keywords."""
        values = ["Bond's Cafe", "9", "4.3", "Nice coffee", "James", "01/11"]
        assert len(tokenize_values(values)) == 8

    def test_count_keywords(self):
        counts = count_keywords(["a", "b", "a"])
        assert counts == {"a": 2, "b": 1}


class TestTfIdf:
    def test_term_frequencies(self):
        assert term_frequencies("burger burger fries")["burger"] == 2

    def test_plain_idf_is_inverse_document_frequency(self):
        scorer = TfIdfScorer({"burger": 4, "coffee": 1}, total_documents=10)
        assert scorer.idf("burger") == 0.25
        assert scorer.idf("coffee") == 1.0

    def test_unknown_keyword_has_zero_idf(self):
        scorer = TfIdfScorer({"a": 1})
        assert scorer.idf("zzz") == 0.0

    def test_score_sums_tf_times_idf(self):
        scorer = TfIdfScorer({"burger": 2, "fries": 1})
        score = scorer.score({"burger": 3, "fries": 1}, ["burger", "fries"])
        assert score == pytest.approx(3 * 0.5 + 1 * 1.0)

    def test_smoothed_idf_is_monotone_in_rarity(self):
        scorer = TfIdfScorer({"common": 100, "rare": 1}, total_documents=100, smoothed=True)
        assert scorer.idf("rare") > scorer.idf("common") > 0


class TestInvertedIndex:
    def _index(self):
        index = InvertedIndex()
        index.add_document("p1", "burger experts burger")
        index.add_document("p2", "unique burger and bad fries")
        index.add_document("p3", "nice coffee")
        index.finalize()
        return index

    def test_postings_sorted_by_descending_tf(self):
        postings = self._index().postings("burger")
        assert [posting.document_id for posting in postings] == ["p1", "p2"]
        assert postings[0].term_frequency == 2

    def test_document_frequency(self):
        index = self._index()
        assert index.document_frequency("burger") == 2
        assert index.document_frequency("zzz") == 0

    def test_document_length(self):
        assert self._index().document_length("p1") == 3

    def test_duplicate_document_rejected(self):
        index = self._index()
        with pytest.raises(ValueError):
            index.add_document("p1", "again")

    def test_remove_document(self):
        index = self._index()
        index.remove_document("p1")
        assert index.document_frequency("burger") == 1
        assert "experts" not in index

    def test_merge_term_frequencies(self):
        index = self._index()
        index.merge_term_frequencies("p3", {"coffee": 2})
        assert index.term_frequencies("p3")["coffee"] == 3

    def test_search_ranks_by_tfidf(self):
        results = self._index().search(["burger"], k=2)
        assert [doc for doc, _score in results] == ["p1", "p2"]
        assert results[0][1] > results[1][1]

    def test_search_unknown_keyword_empty(self):
        assert self._index().search(["zzz"]) == []

    def test_search_multiple_keywords(self):
        results = dict(self._index().search(["burger", "coffee"]))
        assert "p3" in results and "p1" in results

    def test_vocabulary_and_len(self):
        index = self._index()
        assert "coffee" in index.vocabulary
        assert len(index) == len(index.vocabulary)

    def test_iter_items_sorted(self):
        keywords = [keyword for keyword, _postings in self._index().iter_items()]
        assert keywords == sorted(keywords)

    def test_approximate_bytes_positive(self):
        assert self._index().approximate_bytes() > 0
