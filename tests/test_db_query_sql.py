"""Tests for the PSJ query model and the SQL parser."""

import pytest

from repro.db import (
    BetweenCondition,
    Comparison,
    Parameter,
    ParameterizedPSJQuery,
    QueryError,
    SQLParseError,
    parse_psj_query,
)
from repro.datasets.tpch import TPCH_QUERY_SQL


class TestConditions:
    def test_comparison_evaluation(self):
        condition = Comparison("budget", "<=", Parameter("max"))
        assert condition.evaluate(10, {"max": 12})
        assert not condition.evaluate(15, {"max": 12})

    def test_comparison_missing_binding(self):
        condition = Comparison("budget", "=", Parameter("b"))
        with pytest.raises(QueryError):
            condition.evaluate(10, {})

    def test_comparison_rejects_unknown_operator(self):
        with pytest.raises(QueryError):
            Comparison("a", "!=", 3)

    def test_between_evaluation(self):
        condition = BetweenCondition("budget", Parameter("lo"), Parameter("hi"))
        assert condition.evaluate(12, {"lo": 10, "hi": 15})
        assert not condition.evaluate(9, {"lo": 10, "hi": 15})
        assert not condition.evaluate(None, {"lo": 10, "hi": 15})

    def test_between_literal_bounds(self):
        condition = BetweenCondition("budget", 10, 15)
        assert condition.evaluate(15, {})
        assert condition.parameters() == []


class TestSearchQueryStructure:
    def test_operand_relations(self, search_query):
        assert search_query.operand_relations == ("restaurant", "comment", "customer")

    def test_selection_attributes_in_condition_order(self, search_query):
        assert search_query.selection_attributes == ("cuisine", "budget")

    def test_parameters(self, search_query):
        assert search_query.parameters() == ("cuisine", "min", "max")

    def test_equality_and_range_attributes(self, search_query):
        assert search_query.equality_attributes() == ("cuisine",)
        assert search_query.range_attributes() == ("budget",)

    def test_customer_join_promoted_to_left_outer(self, search_query):
        """The customer join key (uid) comes from the LEFT-joined comment
        relation, so the join is null-preserving — restaurants without
        comments stay in the db-pages (paper Figures 1 and 5)."""
        kinds = {join.relation: join.kind for join in search_query.joins}
        assert kinds == {"comment": "left", "customer": "left"}

    def test_evaluation_matches_paper_page_p1(self, fooddb, search_query):
        result = search_query.evaluate(fooddb, {"cuisine": "American", "min": 10, "max": 15})
        names = sorted({record["name"] for record in result})
        assert names == ["Burger Queen", "Wandy's"]
        # P1 of Figure 1 has 4 rows: Burger Queen, Wandy's (no comment),
        # Wandy's with two comments.
        assert len(result) == 4

    def test_evaluation_p2_superset_of_p1(self, fooddb, search_query):
        p1 = search_query.evaluate(fooddb, {"cuisine": "American", "min": 10, "max": 15})
        p2 = search_query.evaluate(fooddb, {"cuisine": "American", "min": 10, "max": 20})
        assert len(p2) == len(p1) + 1  # McRonald's row joins in

    def test_missing_binding_raises(self, fooddb, search_query):
        with pytest.raises(QueryError):
            search_query.evaluate(fooddb, {"cuisine": "American"})

    def test_projection_resolution(self, fooddb, search_query):
        joined = search_query.join_operands(fooddb)
        assert search_query.output_attributes(joined.schema) == (
            "name",
            "budget",
            "rate",
            "comment",
            "uname",
            "date",
        )

    def test_crawling_attributes_include_selection(self, fooddb, search_query):
        joined = search_query.join_operands(fooddb)
        crawling = search_query.crawling_attributes(joined.schema)
        assert "cuisine" in crawling and "budget" in crawling


class TestSqlParser:
    def test_parse_star_projection(self, fooddb):
        query = parse_psj_query(
            "SELECT * FROM restaurant JOIN comment WHERE cuisine = $c AND budget BETWEEN $l AND $u",
            fooddb,
        )
        assert query.projections is None
        assert query.operand_relations == ("restaurant", "comment")

    def test_parse_infers_foreign_key_join(self, fooddb):
        query = parse_psj_query(
            "SELECT name FROM restaurant JOIN comment WHERE cuisine = $c",
            fooddb,
        )
        assert query.joins[0].on == (("rid", "rid"),)

    def test_parse_literal_condition(self, fooddb):
        query = parse_psj_query(
            "SELECT name FROM restaurant JOIN comment WHERE cuisine = 'American'",
            fooddb,
        )
        condition = query.conditions[0]
        assert condition.operand == "American"
        assert not condition.is_parameterized

    def test_parse_unknown_relation(self, fooddb):
        with pytest.raises(SQLParseError):
            parse_psj_query("SELECT * FROM nowhere WHERE x = $p", fooddb)

    def test_parse_unknown_attribute(self, fooddb):
        with pytest.raises(SQLParseError):
            parse_psj_query(
                "SELECT * FROM restaurant JOIN comment WHERE nonexistent = $p", fooddb
            )

    def test_parse_without_joinable_fk(self, fooddb):
        with pytest.raises(SQLParseError):
            parse_psj_query(
                "SELECT * FROM restaurant JOIN customer WHERE cuisine = $c", fooddb
            )

    def test_parse_rejects_trailing_garbage(self, fooddb):
        with pytest.raises(SQLParseError):
            parse_psj_query(
                "SELECT * FROM restaurant JOIN comment WHERE cuisine = $c ORDER BY name",
                fooddb,
            )

    def test_parse_rejects_unsupported_operator(self, fooddb):
        with pytest.raises(SQLParseError):
            parse_psj_query(
                "SELECT * FROM restaurant JOIN comment WHERE budget < $x", fooddb
            )

    def test_qualified_attribute(self, fooddb):
        query = parse_psj_query(
            "SELECT name FROM restaurant JOIN comment WHERE restaurant.budget BETWEEN $l AND $u",
            fooddb,
        )
        assert query.conditions[0].attribute == "budget"

    def test_table3_queries_parse(self, tiny_tpch):
        for name, sql in TPCH_QUERY_SQL.items():
            query = parse_psj_query(sql, tiny_tpch, name=name)
            assert isinstance(query, ParameterizedPSJQuery)
            assert query.parameters() == ("r", "min", "max")

    def test_q3_flattens_parenthesised_group(self, tiny_tpch_queries):
        q3 = tiny_tpch_queries["Q3"]
        assert q3.operand_relations == ("customer", "orders", "lineitem", "part")
        part_join = q3.joins[-1]
        assert part_join.on == (("l_partkey", "p_partkey"),)

    def test_q1_q2_q3_selection_attributes(self, tiny_tpch_queries):
        assert tiny_tpch_queries["Q1"].selection_attributes == ("r_regionkey", "c_acctbal")
        assert tiny_tpch_queries["Q2"].selection_attributes == ("c_custkey", "l_quantity")
        assert tiny_tpch_queries["Q3"].selection_attributes == ("c_custkey", "l_quantity")
