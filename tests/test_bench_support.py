"""Tests for the benchmark-support package (settings, reporting, harness)."""

import pytest

from repro.bench.harness import calibrated_runtime, run_crawl
from repro.bench.reporting import format_table, percentile, print_table, summarize_latencies
from repro.bench.settings import (
    DATASET_NAMES,
    K_VALUES,
    KEYWORD_TEMPERATURES,
    QUERY_NAMES,
    SIZE_THRESHOLDS,
    default_settings,
    quick_settings,
)
from repro.datasets.tpch import TINY, build_tpch, tpch_queries


class TestSettings:
    def test_table1_parameter_space(self):
        """Table I: the experiment parameter space is reproduced verbatim."""
        assert DATASET_NAMES == ("small", "medium", "large")
        assert QUERY_NAMES == ("Q1", "Q2", "Q3")
        assert K_VALUES == (1, 5, 10, 20)
        assert SIZE_THRESHOLDS == (100, 200, 500, 1000)
        assert KEYWORD_TEMPERATURES == ("cold", "warm", "hot")

    def test_default_settings_honour_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert default_settings().dataset_scale == 0.5

    def test_quick_settings_are_smaller(self):
        quick = quick_settings()
        assert quick.dataset_scale < 1.0
        assert len(quick.datasets) < len(default_settings().datasets)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table(["name", "value"], [("a", 1), ("long-name", 12345)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # all data rows align on the separator width
        assert len(lines[3]) == len(lines[4])

    def test_format_table_number_rendering(self):
        text = format_table(["x"], [(1234567,), (0.00042,), (3.14159,)])
        assert "1,234,567" in text
        assert "0.00042" in text
        assert "3.14" in text

    def test_print_table_goes_to_stdout(self, capsys):
        print_table(["a"], [(1,)], title="demo")
        captured = capsys.readouterr()
        assert "demo" in captured.out


class TestLatencyReporting:
    def test_percentile_interpolates(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.0) == 10.0
        assert percentile(samples, 1.0) == 40.0
        assert percentile(samples, 0.5) == 25.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0  # order-insensitive

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_summarize_latencies_distribution(self):
        samples = [0.001 * (index + 1) for index in range(100)]  # 1..100 ms
        summary = summarize_latencies(samples)
        assert summary["requests"] == 100
        assert summary["mean_ms"] == pytest.approx(50.5)
        assert summary["p50_ms"] == pytest.approx(50.5)
        assert summary["p95_ms"] == pytest.approx(95.05)
        assert summary["p99_ms"] == pytest.approx(99.01)
        assert summary["max_ms"] == pytest.approx(100.0)
        # sequential fallback: throughput over the latency sum
        assert summary["throughput_qps"] == pytest.approx(100 / sum(samples))

    def test_summarize_latencies_concurrent_throughput(self):
        """Wall-clock elapsed governs throughput when requests overlapped."""
        summary = summarize_latencies([0.010] * 40, elapsed_seconds=0.100)
        assert summary["throughput_qps"] == pytest.approx(400.0)

    def test_summarize_latencies_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            summarize_latencies([])


class TestHarness:
    def test_calibrated_runtime_shape(self):
        runtime = calibrated_runtime(num_nodes=2, data_time_scale=10.0)
        assert len(runtime.cluster) == 2
        assert runtime.cost_model.data_time_scale == 10.0

    def test_run_crawl_uses_the_cache(self):
        database = build_tpch(TINY)
        databases = {"tiny": database}
        query_sets = {"tiny": tpch_queries(database)}
        cache = {}
        first = run_crawl(cache, databases, query_sets, "tiny", "Q1", "integrated")
        second = run_crawl(cache, databases, query_sets, "tiny", "Q1", "integrated")
        assert first is second
        assert len(cache) == 1
        other = run_crawl(cache, databases, query_sets, "tiny", "Q1", "stepwise")
        assert other is not first
        assert dict(other.index.iter_items()) == dict(first.index.iter_items())
