"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import derive_fragments, fragment_sizes
from repro.core.scoring import DashScorer
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.fooddb import comment_schema, customer_schema, restaurant_schema
from repro.db.database import Database
from repro.db.query import BetweenCondition, Comparison, JoinClause, Parameter, ParameterizedPSJQuery
from repro.db.sqlparse import parse_psj_query
from repro.mapreduce.job import default_partitioner, _stable_hash
from repro.text.inverted_index import InvertedIndex
from repro.text.tokenizer import count_keywords, tokenize
from repro.webapp.request import QueryString, QueryStringSpec

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
cuisines = st.sampled_from(["American", "Thai", "Italian", "Mexican", "Nepali"])
budgets = st.integers(min_value=5, max_value=30)
rates = st.floats(min_value=1.0, max_value=5.0, allow_nan=False).map(lambda x: round(x, 1))
words = st.sampled_from(
    ["burger", "fries", "coffee", "soup", "noodle", "spicy", "bland", "great", "awful", "crispy"]
)
comments = st.lists(words, min_size=1, max_size=5).map(" ".join)


@st.composite
def food_databases(draw):
    """Random fooddb-shaped databases (restaurants, customers, comments)."""
    database = Database("prop-fooddb")
    database.create_relation(restaurant_schema())
    database.create_relation(customer_schema())
    database.create_relation(comment_schema())
    num_restaurants = draw(st.integers(min_value=1, max_value=8))
    num_customers = draw(st.integers(min_value=1, max_value=4))
    for index in range(num_restaurants):
        database.insert(
            "restaurant",
            (f"r{index}", draw(comments), draw(cuisines), draw(budgets), draw(rates)),
        )
    for index in range(num_customers):
        database.insert("customer", (f"u{index}", draw(words)))
    num_comments = draw(st.integers(min_value=0, max_value=12))
    for index in range(num_comments):
        database.insert(
            "comment",
            (
                f"c{index}",
                f"r{draw(st.integers(min_value=0, max_value=num_restaurants - 1))}",
                f"u{draw(st.integers(min_value=0, max_value=num_customers - 1))}",
                draw(comments),
                "01/01",
            ),
        )
    return database


def _search_query(database):
    return parse_psj_query(
        "SELECT name, budget, rate, comment, uname, date "
        "FROM (restaurant LEFT JOIN comment) JOIN customer "
        "WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max",
        database,
        name="Search",
    )


SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
RELAXED = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# tokenizer / inverted file invariants
# ----------------------------------------------------------------------
@given(st.text(max_size=200))
@settings(max_examples=200, deadline=None)
def test_tokenize_always_lowercase_nonempty(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert token


@given(st.lists(words, max_size=50))
@settings(deadline=None)
def test_count_keywords_preserves_total(keywords):
    counts = count_keywords(keywords)
    assert sum(counts.values()) == len(keywords)
    assert all(count > 0 for count in counts.values())


@given(st.dictionaries(st.text(min_size=1, max_size=8), st.lists(words, min_size=1, max_size=20), max_size=10))
@settings(deadline=None)
def test_inverted_index_df_and_lengths(documents):
    index = InvertedIndex()
    for document_id, keywords in documents.items():
        index.add_keywords(document_id, keywords)
    index.finalize()
    for keyword in index.vocabulary:
        postings = index.postings(keyword)
        assert index.document_frequency(keyword) == len(postings)
        frequencies = [posting.term_frequency for posting in postings]
        assert frequencies == sorted(frequencies, reverse=True)
    assert sum(index.document_length(d) for d in index.document_ids()) == sum(
        len(k) for k in documents.values()
    )


@given(st.one_of(st.integers(), st.text(max_size=20), st.tuples(st.text(max_size=5), st.integers())))
@settings(deadline=None)
def test_partitioner_stable_and_in_range(key):
    assert _stable_hash(key) == _stable_hash(key)
    assert 0 <= default_partitioner(key, 7) < 7


# ----------------------------------------------------------------------
# query-string round trips
# ----------------------------------------------------------------------
@given(cuisines, budgets, budgets)
@settings(deadline=None)
def test_query_string_spec_roundtrip(cuisine, low, high):
    bindings = {"cuisine": cuisine, "min": min(low, high), "max": max(low, high)}
    query_string = SPEC.format(bindings)
    parsed = SPEC.parse(str(query_string))
    assert parsed["cuisine"] == cuisine
    assert int(parsed["min"]) == bindings["min"]
    assert int(parsed["max"]) == bindings["max"]


@given(st.lists(st.tuples(st.sampled_from("abcdef"), st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127), min_size=1, max_size=8)),
    max_size=5, unique_by=lambda pair: pair[0]))
@settings(deadline=None)
def test_query_string_parse_format_roundtrip(pairs):
    text = str(QueryString(tuple(pairs)))
    reparsed = QueryString.parse(text)
    assert reparsed.pairs == tuple(pairs)


# ----------------------------------------------------------------------
# fragment invariants on random databases
# ----------------------------------------------------------------------
@given(food_databases())
@RELAXED
def test_fragments_partition_joined_result(database):
    query = _search_query(database)
    fragments = derive_fragments(query, database)
    joined = query.join_operands(database)
    assert sum(fragment.record_count for fragment in fragments.values()) == len(joined)
    # identifiers are unique and never contain NULLs
    for identifier in fragments:
        assert all(component is not None for component in identifier)


@given(food_databases())
@RELAXED
def test_fragment_sizes_equal_page_keyword_counts(database):
    """The db-page for any (cuisine, l, u) binding carries exactly the keywords
    of the fragments whose identifiers satisfy it."""
    query = _search_query(database)
    fragments = derive_fragments(query, database)
    if not fragments:
        return
    cuisine = sorted({identifier[0] for identifier in fragments})[0]
    budgets_for_cuisine = sorted(identifier[1] for identifier in fragments if identifier[0] == cuisine)
    low, high = budgets_for_cuisine[0], budgets_for_cuisine[-1]
    page = query.evaluate(database, {"cuisine": cuisine, "min": low, "max": high})
    page_keywords = len(page.keywords())
    fragment_keywords = sum(
        fragment.size
        for identifier, fragment in fragments.items()
        if identifier[0] == cuisine and low <= identifier[1] <= high
    )
    assert page_keywords == fragment_keywords


@given(food_databases())
@RELAXED
def test_fragment_graph_is_a_union_of_paths(database):
    query = _search_query(database)
    fragments = derive_fragments(query, database)
    graph = FragmentGraph.build(query, fragment_sizes(fragments))
    assert graph.fragment_count == len(fragments)
    for identifier in fragments:
        neighbors = graph.neighbors(identifier)
        # a chain node has at most two neighbours, all sharing its cuisine
        assert len(neighbors) <= 2
        assert all(neighbor[0] == identifier[0] for neighbor in neighbors)
    # edges = nodes - number_of_cuisine_groups (each group is one path)
    groups = {identifier[0] for identifier in fragments}
    assert graph.edge_count == len(fragments) - len(groups)


@given(food_databases(), st.lists(words, min_size=1, max_size=3, unique=True),
       st.integers(min_value=1, max_value=4), st.integers(min_value=5, max_value=60))
@RELAXED
def test_topk_search_invariants(database, keywords, k, size_threshold):
    query = _search_query(database)
    fragments = derive_fragments(query, database)
    index = InvertedFragmentIndex.from_fragments(fragments)
    graph = FragmentGraph.build(query, fragment_sizes(fragments))
    searcher = TopKSearcher(index, graph, UrlFormulator(query, SPEC, "example.com/Search"))
    results = searcher.search(keywords, k=k, size_threshold=size_threshold)

    assert len(results) <= k
    scores = [result.score for result in results]
    assert scores == sorted(scores, reverse=True)
    for result in results:
        # every result page is a set of same-cuisine fragments and scores > 0
        assert result.score > 0
        assert len({identifier[0] for identifier in result.fragments}) == 1
        assert result.size == sum(index.fragment_size(f) for f in result.fragments)
        # the URL regenerates a page containing at least one queried keyword
        bindings = result.bindings
        page = query.evaluate(
            database, {"cuisine": bindings["cuisine"], "min": bindings["min"], "max": bindings["max"]}
        )
        page_words = set(page.keywords())
        assert any(keyword in page_words for keyword in keywords)


@given(food_databases(), st.lists(words, min_size=1, max_size=2, unique=True))
@RELAXED
def test_scoring_matches_manual_tfidf(database, keywords):
    query = _search_query(database)
    fragments = derive_fragments(query, database)
    index = InvertedFragmentIndex.from_fragments(fragments)
    scorer = DashScorer(index, keywords)
    for identifier, fragment in fragments.items():
        expected = 0.0
        if fragment.size:
            for keyword in set(k.lower() for k in keywords):
                occurrences = fragment.term_frequency(keyword)
                if occurrences:
                    expected += (occurrences / fragment.size) * index.idf(keyword)
        assert abs(scorer.score([identifier]) - expected) < 1e-9
