"""Shared fixtures: the fooddb running example and small TPC-H datasets.

Session-scoped fixtures keep the expensive pieces (TPC-H generation, crawls)
to one construction per test run; tests must treat them as read-only (tests
that mutate data build their own databases).
"""

from __future__ import annotations

import pytest

from repro.analysis.analyzer import ApplicationAnalyzer
from repro.core.engine import DashEngine
from repro.datasets.fooddb import (
    FOODDB_SEARCH_SERVLET_SOURCE,
    build_fooddb,
    fooddb_search_query,
)
from repro.datasets.tpch import TINY, build_tpch, tpch_queries
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec
from repro.webapp.server import WebServer

FOODDB_URI = "www.example.com/Search"


@pytest.fixture(scope="session")
def fooddb():
    """The paper's running-example database (read-only)."""
    return build_fooddb()


@pytest.fixture(scope="session")
def search_query(fooddb):
    """The Search application's parameterized PSJ query."""
    return fooddb_search_query(fooddb)


@pytest.fixture(scope="session")
def search_spec():
    """The Search application's query-string field mapping (Figure 3)."""
    return QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))


@pytest.fixture(scope="session")
def search_application(fooddb, search_query, search_spec):
    """The Search web application, with its servlet source attached."""
    return WebApplication(
        name="Search",
        uri=FOODDB_URI,
        query=search_query,
        query_string_spec=search_spec,
        source=FOODDB_SEARCH_SERVLET_SOURCE,
    )


@pytest.fixture(scope="session")
def analyzed_search(fooddb):
    """The Search application as recovered by the static analyzer."""
    return ApplicationAnalyzer(fooddb).analyze(FOODDB_SEARCH_SERVLET_SOURCE, name="Search")


@pytest.fixture(scope="session")
def fooddb_server(fooddb, search_application):
    """A simulated web server hosting the Search application over fooddb."""
    server = WebServer(fooddb, host="www.example.com")
    server.deploy(search_application)
    return server


@pytest.fixture(scope="session")
def fooddb_engine(fooddb, search_application):
    """A Dash engine built over fooddb with the integrated crawler."""
    return DashEngine.build(search_application, fooddb, algorithm="integrated")


@pytest.fixture(scope="session")
def tiny_tpch():
    """A very small TPC-H-like database (schema-faithful, minutes of rows)."""
    return build_tpch(TINY)


@pytest.fixture(scope="session")
def tiny_tpch_queries(tiny_tpch):
    """Q1/Q2/Q3 parsed against the tiny TPC-H database."""
    return tpch_queries(tiny_tpch)
