"""Tests for the simulated MapReduce substrate."""

import pytest

from repro.mapreduce import (
    Cluster,
    CostModel,
    DistributedFileSystem,
    MapReduceJob,
    MapReduceRuntime,
    Node,
    Workflow,
    estimate_size,
    repartition_join_job,
)
from repro.mapreduce.errors import ClusterError, HdfsError, JobError
from repro.mapreduce.job import default_partitioner, identity_mapper, identity_reducer


# ----------------------------------------------------------------------
# serialization / cluster / hdfs
# ----------------------------------------------------------------------
class TestSerialization:
    def test_scalar_sizes(self):
        assert estimate_size(None) == 1
        assert estimate_size(12345) == 5
        assert estimate_size("abc") == 4

    def test_container_sizes_add_up(self):
        assert estimate_size(("a", 1)) > estimate_size("a") + estimate_size(1)

    def test_dict_counts_keys_and_values(self):
        assert estimate_size({"key": "value"}) >= len("key") + len("value")


class TestCluster:
    def test_default_matches_paper_testbed(self):
        cluster = Cluster.default()
        assert len(cluster) == 4

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Node("n"), Node("n")])

    def test_bad_hardware_rejected(self):
        with pytest.raises(ClusterError):
            Node("n", disk_bandwidth_mb_s=0)

    def test_block_placement_round_robin(self):
        cluster = Cluster.default(num_nodes=3)
        assert cluster.node_for_block(0).node_id == "node0"
        assert cluster.node_for_block(4).node_id == "node1"

    def test_unknown_node(self):
        with pytest.raises(ClusterError):
            Cluster.default().node("ghost")


class TestHdfs:
    def test_write_and_read_roundtrip(self):
        fs = DistributedFileSystem(Cluster.default(), block_size_bytes=64)
        records = [(i, f"value-{i}") for i in range(20)]
        fs.write("f", records)
        assert fs.read_all("f") == records

    def test_blocks_are_split_by_size(self):
        fs = DistributedFileSystem(Cluster.default(), block_size_bytes=32)
        fs.write("f", [(i, "x" * 20) for i in range(10)])
        assert fs.open("f").num_blocks > 1

    def test_overwrite_requires_flag(self):
        fs = DistributedFileSystem(Cluster.default())
        fs.write("f", [(1, "a")])
        with pytest.raises(HdfsError):
            fs.write("f", [(2, "b")])
        fs.write("f", [(2, "b")], overwrite=True)
        assert fs.read_values("f") == ["b"]

    def test_missing_file(self):
        with pytest.raises(HdfsError):
            DistributedFileSystem(Cluster.default()).open("missing")

    def test_write_relation_exports_dict_records(self, fooddb):
        fs = DistributedFileSystem(Cluster.default())
        fs.write_relation("restaurants", fooddb.relation("restaurant"), key_attribute="rid")
        records = fs.read_all("restaurants")
        assert len(records) == 7
        key, value = records[0]
        assert key == "001" and value["name"] == "Burger Queen"

    def test_replication_bounded_by_cluster(self):
        fs = DistributedFileSystem(Cluster.default(num_nodes=2), replication=5)
        assert fs.replication == 2


# ----------------------------------------------------------------------
# job validation, partitioner
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_requires_callable_mapper(self):
        with pytest.raises(JobError):
            MapReduceJob(name="bad", mapper="not-callable")

    def test_requires_positive_reduce_tasks(self):
        with pytest.raises(JobError):
            MapReduceJob(name="bad", mapper=identity_mapper, num_reduce_tasks=0)

    def test_default_partitioner_is_stable_and_bounded(self):
        first = default_partitioner(("a", 1), 7)
        second = default_partitioner(("a", 1), 7)
        assert first == second
        assert 0 <= first < 7


# ----------------------------------------------------------------------
# runtime execution
# ----------------------------------------------------------------------
def word_count_mapper(_key, text):
    for word in text.split():
        yield word, 1


def sum_reducer(key, values):
    yield key, sum(values)


class TestRuntime:
    def _runtime(self):
        cluster = Cluster.default()
        return MapReduceRuntime(cluster, DistributedFileSystem(cluster, block_size_bytes=128))

    def test_word_count(self):
        runtime = self._runtime()
        runtime.filesystem.write("docs", [(i, text) for i, text in enumerate(
            ["the quick fox", "the lazy dog", "the fox"])])
        job = MapReduceJob(name="wc", mapper=word_count_mapper, reducer=sum_reducer)
        metrics = runtime.run(job, "docs", "counts")
        counts = dict(runtime.filesystem.read_all("counts"))
        assert counts == {"the": 3, "quick": 1, "fox": 2, "lazy": 1, "dog": 1}
        assert metrics.map.records_in == 3
        assert metrics.simulated_seconds > 0

    def test_combiner_reduces_shuffle(self):
        runtime_plain = self._runtime()
        runtime_combined = self._runtime()
        data = [(i, "a a a b") for i in range(50)]
        for runtime in (runtime_plain, runtime_combined):
            runtime.filesystem.write("in", data)
        no_combiner = MapReduceJob(name="wc", mapper=word_count_mapper, reducer=sum_reducer)
        with_combiner = MapReduceJob(
            name="wc-c", mapper=word_count_mapper, reducer=sum_reducer, combiner=sum_reducer
        )
        plain = runtime_plain.run(no_combiner, "in", "out")
        combined = runtime_combined.run(with_combiner, "in", "out")
        assert dict(runtime_plain.filesystem.read_all("out")) == dict(
            runtime_combined.filesystem.read_all("out")
        )
        assert combined.shuffle.bytes_in < plain.shuffle.bytes_in

    def test_map_only_job(self):
        runtime = self._runtime()
        runtime.filesystem.write("in", [(1, "x"), (2, "y")])
        job = MapReduceJob(name="identity", mapper=identity_mapper, reducer=None)
        metrics = runtime.run(job, "in", "out")
        assert metrics.shuffle.bytes_in == 0
        assert sorted(runtime.filesystem.read_all("out")) == [(1, "x"), (2, "y")]

    def test_per_input_mappers(self):
        runtime = self._runtime()
        runtime.filesystem.write("a", [(1, 10)])
        runtime.filesystem.write("b", [(1, 100)])
        job = MapReduceJob(name="multi", mapper=identity_mapper, reducer=identity_reducer)
        runtime.run(
            job,
            [("a", lambda k, v: [(k, ("A", v))]), ("b", lambda k, v: [(k, ("B", v))])],
            "out",
        )
        values = sorted(runtime.filesystem.read_values("out"))
        assert values == [("A", 10), ("B", 100)]

    def test_reduce_keys_processed_in_sorted_order(self):
        runtime = self._runtime()
        runtime.filesystem.write("in", [(k, k) for k in ["b", "a", "c"]])
        seen = []

        def recording_reducer(key, values):
            seen.append(key)
            yield key, values[0]

        job = MapReduceJob(
            name="sorted", mapper=identity_mapper, reducer=recording_reducer, num_reduce_tasks=1
        )
        runtime.run(job, "in", "out")
        assert seen == sorted(seen)

    def test_deterministic_across_runs(self):
        results = []
        for _ in range(2):
            runtime = self._runtime()
            runtime.filesystem.write("docs", [(i, "w%d" % (i % 3)) for i in range(30)])
            job = MapReduceJob(name="wc", mapper=word_count_mapper, reducer=sum_reducer)
            metrics = runtime.run(job, "docs", "out")
            results.append((tuple(sorted(runtime.filesystem.read_all("out"))), metrics.shuffle.bytes_in))
        assert results[0] == results[1]

    def test_cost_model_scale_multiplies_data_time(self):
        cluster = Cluster.default()
        base = CostModel()
        scaled = CostModel(data_time_scale=100.0)
        args = dict(input_bytes=10_000_000, input_records=10_000, output_bytes=10_000_000,
                    num_map_tasks=4, disk_bandwidth_mb_s=80.0, cpu_records_per_s=1e6,
                    parallel_map_slots=4)
        # the fixed per-task startup does not scale, so the ratio is a bit
        # below the nominal 100x factor
        assert scaled.map_phase_seconds(**args) > 40 * base.map_phase_seconds(**args)
        assert base.job_overhead_seconds() == scaled.job_overhead_seconds()


# ----------------------------------------------------------------------
# workflows and join helpers
# ----------------------------------------------------------------------
class TestWorkflowAndJoins:
    def test_workflow_chains_outputs_and_aggregates_stages(self):
        cluster = Cluster.default()
        runtime = MapReduceRuntime(cluster, DistributedFileSystem(cluster))
        runtime.filesystem.write("docs", [(1, "a b"), (2, "b c")])
        workflow = Workflow("two-step", runtime)
        workflow.add_step(
            MapReduceJob(name="count", mapper=word_count_mapper, reducer=sum_reducer),
            inputs=["docs"], output="counts", stage="first",
        )
        workflow.add_step(
            MapReduceJob(name="invert", mapper=lambda k, v: [(v, k)], reducer=identity_reducer),
            inputs=["counts"], output="inverted", stage="second",
        )
        metrics = workflow.run()
        assert set(metrics.stage_simulated_seconds()) == {"first", "second"}
        assert metrics.simulated_seconds > 0
        assert runtime.filesystem.exists("inverted")

    def test_empty_workflow_rejected(self):
        cluster = Cluster.default()
        runtime = MapReduceRuntime(cluster, DistributedFileSystem(cluster))
        with pytest.raises(JobError):
            Workflow("empty", runtime).run()

    def test_repartition_join_matches_relational_join(self, fooddb):
        from repro.db.algebra import inner_join

        cluster = Cluster.default()
        runtime = MapReduceRuntime(cluster, DistributedFileSystem(cluster))
        runtime.filesystem.write_relation("restaurant", fooddb.relation("restaurant"))
        runtime.filesystem.write_relation("comment", fooddb.relation("comment"))
        left_prep, right_prep, join = repartition_join_job(
            "test", "restaurant", "comment", ["rid"], ["rid"], kind="inner"
        )
        runtime.run(left_prep, "restaurant", "left-prepared")
        runtime.run(right_prep, "comment", "right-prepared")
        runtime.run(join, ["left-prepared", "right-prepared"], "joined")
        joined_mr = runtime.filesystem.read_values("joined")
        expected = inner_join(fooddb.relation("restaurant"), fooddb.relation("comment"), [("rid", "rid")])
        assert len(joined_mr) == len(expected)
        names = sorted(record["name"] for record in joined_mr)
        assert names == sorted(record["name"] for record in expected)
