"""Tests for the serving layer: admission, caching, concurrency, staleness.

The staleness suite is the serving contract in miniature: after an
IncrementalMaintainer applies inserts/deletes, a previously-cached query must
return the fresh result set on every backend (1/2/8 shards), while cached
queries the update did not touch keep hitting.
"""

import threading
import time

import pytest

from repro.core.engine import DashEngine
from repro.core.incremental import IncrementalMaintainer
from repro.core.search import TopKSearcher
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.serving import (
    InvalidParameterError,
    InvalidQueryError,
    ResultCache,
    SearchGateway,
    SearchService,
    ServiceClosedError,
    ServiceConfigurationError,
)
from repro.serving.cache import CachedResult
from repro.store import InMemoryStore, ShardedStore
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec
from repro.webapp.server import WebServer

#: Store specs the parity/staleness suites sweep: 1, 2 and 8 partitions.
STORE_SPECS = ("memory", 2, 8)


def build_bundle(store_spec="memory"):
    """A fresh (database, engine) pair over fooddb (mutable per test)."""
    database = build_fooddb()
    application = WebApplication(
        name="Search",
        uri="www.example.com/Search",
        query=fooddb_search_query(database),
        query_string_spec=QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max"))),
    )
    engine = DashEngine.build(
        application, database, algorithm="integrated", analyze_source=False, store=store_spec
    )
    return database, engine


def as_comparable(results):
    """Byte-identical comparison key: URL, exact score, fragments, size."""
    return [(r.url, r.score, r.fragments, r.size) for r in results]


@pytest.fixture
def service_bundle():
    database, engine = build_bundle()
    service = engine.serving(cache_size=32, workers=2, default_k=5, default_size_threshold=20)
    yield database, engine, service
    service.close()


class TestAdmission:
    def test_string_input_is_tokenized_and_lowercased(self, service_bundle):
        _database, _engine, service = service_bundle
        admitted = service.admit("Bond's  Cafe COFFEE")
        assert admitted.keywords == ("bond's", "cafe", "coffee")

    def test_iterable_input_deduplicates_preserving_order(self, service_bundle):
        _database, _engine, service = service_bundle
        admitted = service.admit(["Burger", "coffee", "BURGER"])
        assert admitted.keywords == ("burger", "coffee")

    def test_defaults_apply(self, service_bundle):
        _database, _engine, service = service_bundle
        admitted = service.admit("burger")
        assert (admitted.k, admitted.size_threshold) == (5, 20)

    def test_empty_query_rejected(self, service_bundle):
        _database, _engine, service = service_bundle
        with pytest.raises(InvalidQueryError):
            service.admit("   !!!  ")
        with pytest.raises(InvalidQueryError):
            service.admit([])
        with pytest.raises(InvalidQueryError):
            service.admit(None)

    @pytest.mark.parametrize("bad_k", [0, -1, 2.5, "5", True])
    def test_bad_k_rejected(self, service_bundle, bad_k):
        _database, _engine, service = service_bundle
        with pytest.raises(InvalidParameterError):
            service.admit("burger", k=bad_k)

    def test_bad_size_threshold_rejected(self, service_bundle):
        _database, _engine, service = service_bundle
        with pytest.raises(InvalidParameterError):
            service.admit("burger", size_threshold=0)

    def test_mapping_requests_and_overrides(self, service_bundle):
        _database, _engine, service = service_bundle
        results = service.search_many(
            ["burger", {"keywords": "thai", "k": 1}], k=2, size_threshold=20
        )
        assert results[0].k == 2
        assert results[1].k == 1
        with pytest.raises(InvalidParameterError):
            service.search_many([{"keywords": "thai", "limit": 3}])
        with pytest.raises(InvalidQueryError):
            service.search_many([{"k": 3}])

    def test_invalid_configuration_rejected(self, service_bundle):
        _database, engine, _service = service_bundle
        with pytest.raises(ServiceConfigurationError):
            SearchService(engine.searcher, workers=0)
        with pytest.raises(ServiceConfigurationError):
            SearchService(engine.searcher, cache_size=-1)
        with pytest.raises(ServiceConfigurationError):
            SearchService(engine.searcher, default_k=0)


class TestCaching:
    def test_second_lookup_hits(self, service_bundle):
        _database, _engine, service = service_bundle
        first = service.search("burger")
        second = service.search("burger")
        assert not first.cached and second.cached
        assert as_comparable(second.results) == as_comparable(first.results)

    def test_distinct_parameters_cache_separately(self, service_bundle):
        _database, _engine, service = service_bundle
        service.search("burger", k=1)
        miss = service.search("burger", k=2)
        assert not miss.cached

    def test_lru_eviction(self):
        _database, engine = build_bundle()
        service = engine.serving(cache_size=2, workers=1, default_size_threshold=20)
        service.search("burger")
        service.search("thai")
        service.search("coffee")  # evicts "burger"
        assert not service.search("burger").cached
        assert service.statistics()["cache"]["evictions"] >= 1

    def test_cache_size_zero_disables_caching(self):
        _database, engine = build_bundle()
        service = engine.serving(cache_size=0, workers=1, default_size_threshold=20)
        service.search("burger")
        assert not service.search("burger").cached
        assert len(service.cache) == 0

    def test_warm_up_seeds_the_cache(self, service_bundle):
        _database, _engine, service = service_bundle
        seeded = service.warm_up(["burger", "thai", "burger"])
        assert seeded == 2
        assert service.search("burger").cached
        assert service.search("thai").cached

    def test_invalidate_cache_drops_everything(self, service_bundle):
        _database, _engine, service = service_bundle
        service.search("burger")
        assert service.invalidate_cache() == 1
        assert not service.search("burger").cached

    def test_statistics_counters(self, service_bundle):
        _database, _engine, service = service_bundle
        service.search("burger")
        service.search("burger")
        statistics = service.statistics()
        assert statistics["queries"] == 2
        assert statistics["computed"] == 1
        assert statistics["cache"]["hits"] == 1
        assert statistics["cache"]["misses"] == 1
        assert statistics["session"]["scorer_builds"] >= 1


class TestResultCacheUnit:
    def test_oversized_dependency_sets_degrade_to_epoch_only(self):
        store = InMemoryStore()
        cache = ResultCache(4)
        entry = CachedResult(results=(), keywords=("w",), dependencies=None, epoch=store.epoch)
        cache.put("key", entry)
        assert cache.get("key", store) is entry  # fast path: epoch unchanged
        store.add_posting("other", ("x",), 1)  # any mutation at all
        assert cache.get("key", store) is None
        assert cache.statistics.stale_drops == 1

    def test_fresh_entry_restamps_to_current_epoch(self):
        store = InMemoryStore()
        store.add_posting("w", ("a",), 1)
        cache = ResultCache(4)
        entry = CachedResult(
            results=(), keywords=("w",), dependencies=frozenset({("a",)}), epoch=store.epoch
        )
        cache.put("key", entry)
        store.add_posting("unrelated", ("b",), 1)  # does not touch w or ("a",)
        assert cache.get("key", store) is entry
        assert entry.epoch == store.epoch


@pytest.mark.parametrize("store_spec", STORE_SPECS)
class TestParity:
    """Service answers are byte-identical to uncached TopKSearcher.search."""

    def test_cached_and_uncached_results_identical(self, store_spec):
        database, engine = build_bundle(store_spec)
        reference = TopKSearcher(engine.index, engine.graph, engine.searcher.url_formulator)
        service = engine.serving(cache_size=64, workers=2)
        queries = [("burger",), ("thai",), ("coffee", "burger"), ("noodle",)]
        for keywords in queries:
            for k, size_threshold in ((1, 20), (3, 20), (5, 100)):
                expected = as_comparable(
                    reference.search(keywords, k=k, size_threshold=size_threshold)
                )
                cold = service.search(keywords, k=k, size_threshold=size_threshold)
                hot = service.search(keywords, k=k, size_threshold=size_threshold)
                assert as_comparable(cold.results) == expected
                assert as_comparable(hot.results) == expected
                assert hot.cached
        service.close()


@pytest.mark.parametrize("store_spec", STORE_SPECS)
class TestStaleness:
    """Epoch-based invalidation across every backend (1/2/8 shards)."""

    def test_insert_refreshes_affected_query_and_keeps_untouched_hits(self, store_spec):
        database, engine = build_bundle(store_spec)
        service = engine.serving(cache_size=64, workers=1, default_k=5, default_size_threshold=20)
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )

        before = service.search("milkshake")
        assert before.results == ()  # the keyword does not exist yet
        untouched = service.search("thai")
        assert service.search("thai").cached

        affected = maintainer.insert("comment", ("207", "001", "120", "Great milkshake", "07/12"))
        assert affected == (("American", 10),)
        assert maintainer.epoch == maintainer.last_epoch == engine.store.epoch

        # The affected query was dropped as stale and recomputed fresh...
        after = service.search("milkshake")
        assert not after.cached
        expected = as_comparable(engine.searcher.search(["milkshake"], k=5, size_threshold=20))
        assert as_comparable(after.results) == expected
        assert after.results != ()
        # ...while the untouched query still hits the old entry.
        still = service.search("thai")
        assert still.cached
        assert as_comparable(still.results) == as_comparable(untouched.results)
        service.close()

    def test_delete_refreshes_affected_query_on_every_backend(self, store_spec):
        database, engine = build_bundle(store_spec)
        service = engine.serving(cache_size=64, workers=1, default_k=5, default_size_threshold=20)
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )

        before = service.search("burger")
        assert before.results != ()
        untouched = service.search("thai")

        affected = maintainer.delete("comment", lambda record: record["cid"] == "203")
        assert affected  # the Example-6 burger comment lives on (American, 12)

        after = service.search("burger")
        assert not after.cached
        expected = as_comparable(engine.searcher.search(["burger"], k=5, size_threshold=20))
        assert as_comparable(after.results) == expected
        assert as_comparable(after.results) != as_comparable(before.results)

        still = service.search("thai")
        assert still.cached
        assert as_comparable(still.results) == as_comparable(untouched.results)
        service.close()

    def test_second_lookup_after_refresh_hits_again(self, store_spec):
        database, engine = build_bundle(store_spec)
        service = engine.serving(cache_size=64, workers=1, default_k=5, default_size_threshold=20)
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        service.search("burger")
        maintainer.insert("restaurant", ("009", "Grill House", "American", 11, 3.5))
        refreshed = service.search("burger")
        assert not refreshed.cached
        assert service.search("burger").cached
        service.close()


class TestConcurrency:
    def test_search_many_preserves_order_and_matches_sequential(self, service_bundle):
        _database, _engine, service = service_bundle
        requests = ["burger", "thai", "coffee", "burger", "noodle soup"]
        batch = service.search_many(requests)
        assert [result.keywords for result in batch] == [
            ("burger",), ("thai",), ("coffee",), ("burger",), ("noodle", "soup"),
        ]
        for request, served in zip(requests, batch):
            assert as_comparable(service.search(request).results) == as_comparable(served.results)

    def test_batch_admission_fails_fast(self, service_bundle):
        _database, _engine, service = service_bundle
        with pytest.raises(InvalidQueryError):
            service.search_many(["burger", ""])
        # nothing from the rejected batch was executed
        assert service.statistics()["queries"] == 0

    def test_concurrent_identical_queries_coalesce(self):
        _database, engine = build_bundle()
        service = SearchService(engine.searcher, cache_size=32, workers=4)
        calls = []
        original = engine.searcher.search_detailed
        started = threading.Event()

        def slow_search(*args, **kwargs):
            calls.append(args)
            started.wait(1.0)
            return original(*args, **kwargs)

        engine.searcher.search_detailed = slow_search
        try:
            threads = [
                threading.Thread(target=service.search, args=("burger",), kwargs={"k": 2})
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let every thread reach the coalescing gate
            started.set()
            for thread in threads:
                thread.join(5.0)
        finally:
            engine.searcher.search_detailed = original
        assert len(calls) == 1  # one computation served all four callers
        statistics = service.statistics()
        assert statistics["computed"] == 1
        assert statistics["coalesced"] + statistics["cache"]["hits"] == 3
        service.close()


class TestSessionReuse:
    def test_engine_search_reuses_scorers_until_epoch_moves(self):
        database, engine = build_bundle()
        engine.search(["burger"], k=2, size_threshold=20)
        engine.search(["burger"], k=5, size_threshold=20)
        assert engine.session.statistics()["scorer_reuses"] >= 1
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        maintainer.insert("comment", ("208", "001", "120", "spicy noodle", "08/01"))
        builds_before = engine.session.statistics()["scorer_builds"]
        engine.search(["burger"], k=2, size_threshold=20)
        # the next search revalidated the session: caches were dropped and the
        # scorer rebuilt against the post-update store state
        assert engine.session.epoch == engine.store.epoch
        assert engine.session.statistics()["scorer_builds"] == builds_before + 1


class TestLifecycle:
    def test_closed_service_rejects_queries(self, service_bundle):
        _database, engine, _service = service_bundle
        with engine.serving(workers=2) as service:
            service.search("burger")
        with pytest.raises(ServiceClosedError):
            service.search("burger")


class TestGateway:
    def build_server(self):
        database, engine = build_bundle()
        service = engine.serving(cache_size=32, workers=1, default_k=5, default_size_threshold=20)
        server = WebServer(database, host="www.example.com")
        server.deploy(engine.application)
        gateway = SearchGateway(service)
        server.deploy(gateway)
        return database, engine, service, server, gateway

    def test_end_to_end_search_and_dereference(self):
        _database, engine, _service, server, gateway = self.build_server()
        page = server.get("www.example.com/dbsearch?q=burger&k=2&s=20")
        expected = engine.searcher.search(["burger"], k=2, size_threshold=20)
        assert page.record_count == len(expected)
        for result in expected:
            assert result.url in page.text
        # the suggested URLs resolve to real db-pages on the same host
        for result in expected:
            db_page = server.get(result.url)
            assert db_page.contains_keyword("burger")
        assert gateway.requests_served == 1

    def test_multi_keyword_and_percent_encoding(self):
        _database, engine, _service, server, _gateway = self.build_server()
        page = server.get("www.example.com/dbsearch?q=thai+burger")
        expected = engine.searcher.search(["thai", "burger"], k=5, size_threshold=20)
        assert page.record_count == len(expected)

    def test_missing_or_invalid_fields_raise_typed_errors(self):
        _database, _engine, _service, server, _gateway = self.build_server()
        with pytest.raises(InvalidQueryError):
            server.get("www.example.com/dbsearch?q=")
        with pytest.raises(InvalidParameterError):
            server.get("www.example.com/dbsearch?q=burger&k=ten")
        with pytest.raises(InvalidParameterError):
            server.get("www.example.com/dbsearch?q=burger&k=0")


class TestStoreEpochs:
    @pytest.mark.parametrize("store", [InMemoryStore(), ShardedStore(shards=4)])
    def test_mutations_bump_the_clock(self, store):
        assert store.epoch == 0
        store.add_posting("w", ("a",), 2)
        first = store.epoch
        assert first > 0
        assert store.keyword_epoch("w") == first
        assert store.fragment_epoch(("a",)) == first
        assert store.keyword_epoch("other") == 0
        store.add_node(("a",), 2)
        assert store.fragment_epoch(("a",)) > first
        assert store.keyword_epoch("w") == first  # graph ops do not touch keywords

    def test_replace_fragment_bumps_old_and_new_keywords(self):
        for store in (InMemoryStore(), ShardedStore(shards=4)):
            store.add_posting("old", ("a",), 1)
            stamp = store.epoch
            store.replace_fragment(("a",), {"new": 2})
            assert store.keyword_epoch("old") > stamp
            assert store.keyword_epoch("new") > stamp
            assert store.fragment_epoch(("a",)) > stamp

    def test_removed_fragment_keeps_its_final_epoch(self):
        store = InMemoryStore()
        store.add_posting("w", ("a",), 1)
        store.remove_fragment(("a",))
        assert store.fragment_epoch(("a",)) == store.epoch

    @pytest.mark.parametrize("make_store", [InMemoryStore, lambda: ShardedStore(shards=4)])
    def test_concurrent_reads_never_see_torn_posting_lists(self, make_store):
        """finalize's sort must never expose a mid-sort (emptied) list.

        Regression test: in-place list.sort leaves the list empty while it
        runs, so readers racing a writer's add+finalize cycle used to observe
        truncated postings and could cache them as fresh.
        """
        store = make_store()
        for index in range(800):
            store.add_posting("hot", ("f", index), 1 + index % 3)
        torn = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                count = len(store.postings("hot"))
                if count < 800:
                    torn.append(count)
                    return

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        for round_index in range(150):
            store.add_posting("hot", ("g", round_index), 1)
            store.finalize()
        stop.set()
        for thread in readers:
            thread.join(5)
        assert torn == []
        final = store.postings("hot")
        assert len(final) == 950  # and no concurrent append was lost
        assert all(
            final[i].term_frequency >= final[i + 1].term_frequency
            for i in range(len(final) - 1)
        )
