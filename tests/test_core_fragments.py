"""Tests for db-page fragments, the inverted fragment index and the fragment graph."""

import pytest

from repro.core.fragment_graph import FragmentGraph, FragmentGraphError
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import (
    average_keywords_per_fragment,
    derive_fragments,
    fragment_sizes,
)


@pytest.fixture(scope="module")
def fooddb_fragments(fooddb, search_query):
    return derive_fragments(search_query, fooddb)


@pytest.fixture(scope="module")
def fooddb_index(fooddb_fragments):
    return InvertedFragmentIndex.from_fragments(fooddb_fragments)


@pytest.fixture(scope="module")
def fooddb_graph(search_query, fooddb_fragments):
    return FragmentGraph.build(search_query, fragment_sizes(fooddb_fragments))


class TestFragmentDerivation:
    def test_identifiers_match_figure5(self, fooddb_fragments):
        assert set(fooddb_fragments) == {
            ("American", 9), ("American", 10), ("American", 12), ("American", 18), ("Thai", 10),
        }

    def test_sizes_match_figure9(self, fooddb_fragments):
        sizes = fragment_sizes(fooddb_fragments)
        assert sizes[("American", 9)] == 8
        assert sizes[("American", 10)] == 8
        assert sizes[("American", 12)] == 17
        assert sizes[("American", 18)] == 8
        assert sizes[("Thai", 10)] == 10

    def test_american_12_has_three_records(self, fooddb_fragments):
        assert fooddb_fragments[("American", 12)].record_count == 3

    def test_burger_occurrences_match_figure6(self, fooddb_fragments):
        assert fooddb_fragments[("American", 10)].term_frequency("burger") == 2
        assert fooddb_fragments[("American", 12)].term_frequency("burger") == 1
        assert fooddb_fragments[("Thai", 10)].term_frequency("burger") == 1

    def test_fragments_partition_the_joined_result(self, fooddb, search_query, fooddb_fragments):
        joined = search_query.join_operands(fooddb)
        assert sum(f.record_count for f in fooddb_fragments.values()) == len(joined)

    def test_average_keywords(self, fooddb_fragments):
        assert average_keywords_per_fragment(fooddb_fragments) == pytest.approx(51 / 5)

    def test_fragment_text_contains_projected_values_only(self, fooddb_fragments):
        text = fooddb_fragments[("American", 9)].text()
        assert "Bond's Cafe" in text
        assert "American" not in text  # cuisine is a selection attribute, not projected

    def test_every_page_is_a_union_of_fragments(self, fooddb, search_query, fooddb_fragments):
        """Definition 2: any db-page equals the disjoint union of the fragments
        whose identifiers satisfy its query-string bindings."""
        bindings = {"cuisine": "American", "min": 10, "max": 15}
        page = search_query.evaluate(fooddb, bindings)
        matching = [
            fragment for identifier, fragment in fooddb_fragments.items()
            if identifier[0] == "American" and 10 <= identifier[1] <= 15
        ]
        assert sum(fragment.record_count for fragment in matching) == len(page)


class TestInvertedFragmentIndex:
    def test_postings_match_figure6(self, fooddb_index):
        burger = [(tuple(p.document_id), p.term_frequency) for p in fooddb_index.postings("burger")]
        assert (("American", 10), 2) == burger[0]
        assert set(burger) == {
            (("American", 10), 2), (("American", 12), 1), (("Thai", 10), 1),
        }
        assert [(tuple(p.document_id), p.term_frequency) for p in fooddb_index.postings("coffee")] == [
            (("American", 9), 1)
        ]

    def test_fragment_frequency_and_idf(self, fooddb_index):
        assert fooddb_index.fragment_frequency("burger") == 3
        assert fooddb_index.idf("burger") == pytest.approx(1 / 3)
        assert fooddb_index.idf("unseen-word") == 0.0

    def test_fragment_sizes_via_index(self, fooddb_index):
        assert fooddb_index.fragment_size(("American", 12)) == 17
        assert fooddb_index.fragment_size(("Nope", 1)) == 0

    def test_from_posting_lists_equals_from_fragments(self, fooddb_fragments, fooddb_index):
        posting_lists = {
            keyword: [(p.document_id, p.term_frequency) for p in postings]
            for keyword, postings in fooddb_index.iter_items()
        }
        rebuilt = InvertedFragmentIndex.from_posting_lists(posting_lists)
        assert dict(rebuilt.iter_items()) == dict(fooddb_index.iter_items())
        assert rebuilt.fragment_sizes == fooddb_index.fragment_sizes

    def test_replace_and_remove_fragment(self, fooddb_fragments):
        index = InvertedFragmentIndex.from_fragments(fooddb_fragments)
        index.replace_fragment(("American", 9), {"coffee": 5})
        assert index.term_frequency("coffee", ("American", 9)) == 5
        index.remove_fragment(("American", 9))
        assert index.fragment_size(("American", 9)) == 0
        assert ("American", 9) not in index.fragment_ids()

    def test_duplicate_fragment_rejected(self, fooddb_fragments):
        index = InvertedFragmentIndex.from_fragments(fooddb_fragments)
        with pytest.raises(ValueError):
            index.add_fragment(("American", 9), {"x": 1})

    def test_average_keywords_per_fragment(self, fooddb_index):
        assert fooddb_index.average_keywords_per_fragment() == pytest.approx(51 / 5)

    def test_postings_sorted_descending(self, fooddb_index):
        for keyword, postings in fooddb_index.iter_items():
            frequencies = [posting.term_frequency for posting in postings]
            assert frequencies == sorted(frequencies, reverse=True)


class TestFragmentGraph:
    def test_figure9_topology(self, fooddb_graph):
        assert fooddb_graph.fragment_count == 5
        assert fooddb_graph.edge_count == 3
        assert fooddb_graph.are_connected(("American", 9), ("American", 10))
        assert fooddb_graph.are_connected(("American", 10), ("American", 12))
        assert fooddb_graph.are_connected(("American", 12), ("American", 18))
        assert not fooddb_graph.are_connected(("American", 10), ("American", 18))
        assert fooddb_graph.neighbors(("Thai", 10)) == ()

    def test_node_values_are_keyword_counts(self, fooddb_graph):
        assert fooddb_graph.keyword_count(("American", 9)) == 8
        assert fooddb_graph.keyword_count(("American", 12)) == 17

    def test_connected_component(self, fooddb_graph):
        component = fooddb_graph.connected_component(("American", 10))
        assert len(component) == 4
        assert ("Thai", 10) not in component

    def test_incremental_insertion_splits_edges(self, search_query):
        graph = FragmentGraph(search_query)
        graph.add_fragment(("American", 9), 8)
        graph.add_fragment(("American", 18), 8)
        assert graph.are_connected(("American", 9), ("American", 18))
        graph.add_fragment(("American", 12), 17)
        assert not graph.are_connected(("American", 9), ("American", 18))
        assert graph.are_connected(("American", 9), ("American", 12))
        assert graph.are_connected(("American", 12), ("American", 18))

    def test_incremental_equals_presorted(self, search_query, fooddb_fragments):
        sizes = fragment_sizes(fooddb_fragments)
        incremental = FragmentGraph.build(search_query, sizes, presorted=False)
        presorted = FragmentGraph.build(search_query, sizes, presorted=True)
        for identifier in sizes:
            assert set(incremental.neighbors(identifier)) == set(presorted.neighbors(identifier))

    def test_presorting_saves_comparisons(self, search_query, fooddb_fragments):
        sizes = fragment_sizes(fooddb_fragments)
        incremental = FragmentGraph.build(search_query, sizes, presorted=False)
        presorted = FragmentGraph.build(search_query, sizes, presorted=True)
        assert presorted.comparisons <= incremental.comparisons

    def test_remove_fragment_reconnects_chain(self, search_query, fooddb_fragments):
        graph = FragmentGraph.build(search_query, fragment_sizes(fooddb_fragments))
        graph.remove_fragment(("American", 12))
        assert graph.are_connected(("American", 10), ("American", 18))

    def test_duplicate_fragment_rejected(self, search_query):
        graph = FragmentGraph(search_query)
        graph.add_fragment(("American", 9), 8)
        with pytest.raises(FragmentGraphError):
            graph.add_fragment(("American", 9), 8)

    def test_unknown_fragment_raises(self, fooddb_graph):
        with pytest.raises(FragmentGraphError):
            fooddb_graph.neighbors(("French", 1))

    def test_build_with_report(self, search_query, fooddb_fragments):
        graph, report = FragmentGraph.build_with_report(search_query, fragment_sizes(fooddb_fragments))
        assert report.fragment_count == 5
        assert report.edge_count == graph.edge_count
        assert report.average_keywords == pytest.approx(51 / 5)
        assert report.build_seconds >= 0
