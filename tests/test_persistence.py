"""Restart semantics and epoch-clock bounding.

Two guarantees stack on the :class:`~repro.store.DiskStore` backend:

* **warm restart** — build → serve → process exit → ``DashEngine.open`` must
  serve byte-identical results without a crawl, and because the epoch clock
  is persisted with the data, post-restart maintenance invalidates serving
  caches exactly as pre-restart maintenance would;
* **bounded clock** — the :class:`~repro.store.EpochClock` keeps tombstones
  for removed fragments so stale cache entries keep failing revalidation;
  the serving-driven generation sweep must bound that memory to the
  fragments touched since the oldest live cache stamp, even under
  continuous maintenance churn.
"""

from __future__ import annotations

import pytest

from repro.core.engine import DashEngine, DashEngineError
from repro.core.incremental import IncrementalMaintainer
from repro.store import DiskStore, EpochClock, InMemoryStore
from repro.store.disk import decode_identifier, encode_identifier


def _result_tuples(results):
    return [(r.url, r.score, r.fragments, r.size) for r in results]


@pytest.fixture()
def disk_path(tmp_path):
    return str(tmp_path / "engine.sqlite")


def _build_disk_engine(search_application, disk_path):
    from repro.datasets.fooddb import build_fooddb

    database = build_fooddb()
    return database, DashEngine.build(
        search_application, database, store="disk", store_path=disk_path
    )


# ----------------------------------------------------------------------
# warm restart
# ----------------------------------------------------------------------
class TestWarmRestart:
    def test_open_serves_identical_results(self, search_application, disk_path):
        from repro.datasets.fooddb import build_fooddb

        _database, engine = _build_disk_engine(search_application, disk_path)
        queries = (["burger"], ["coffee", "fries"], ["spicy"])
        expected = {
            tuple(keywords): _result_tuples(engine.search(keywords, k=3, size_threshold=20))
            for keywords in queries
        }
        epoch_before = engine.store.epoch
        engine.store.close()  # the "process exit"

        reopened = DashEngine.open(disk_path, search_application, build_fooddb())
        assert reopened.store.epoch == epoch_before
        assert reopened.statistics()["algorithm"] == "reopened"
        assert reopened.statistics()["store_backend"] == "DiskStore"
        for keywords in queries:
            actual = _result_tuples(reopened.search(keywords, k=3, size_threshold=20))
            assert actual == expected[tuple(keywords)]

    def test_post_restart_maintenance_invalidates_precisely(
        self, search_application, disk_path
    ):
        from repro.datasets.fooddb import build_fooddb

        _database, engine = _build_disk_engine(search_application, disk_path)
        engine.store.close()

        database = build_fooddb()
        reopened = DashEngine.open(disk_path, search_application, database)
        service = reopened.serving(cache_size=64, workers=1)
        burger = service.search("burger", k=3, size_threshold=20)
        thai = service.search("thai", k=3, size_threshold=20)
        assert service.search("burger", k=3, size_threshold=20).cached

        # a replace_fragment applied through a *reopened* store must drop
        # exactly the entries it could have changed
        maintainer = IncrementalMaintainer(
            reopened.application.query, database, reopened.index, reopened.graph
        )
        maintainer.insert("restaurant", ("008", "Burger Basement", "American", 9, 4.9))
        refreshed = service.search("burger", k=3, size_threshold=20)
        assert not refreshed.cached, "the American chain changed; the entry must drop"
        assert refreshed.epoch > burger.epoch
        retained = service.search("thai", k=3, size_threshold=20)
        assert retained.cached, "the Thai chain was untouched; its entry must keep hitting"
        assert retained.urls == thai.urls

        # and the refreshed results match a from-scratch engine over the
        # same post-update database
        rebuilt = DashEngine.build(search_application, database)
        assert _result_tuples(refreshed.results) == _result_tuples(
            rebuilt.search(["burger"], k=3, size_threshold=20)
        )

    def test_replace_fragment_is_durable_across_reopen(self, search_application, disk_path):
        from repro.datasets.fooddb import build_fooddb

        database, engine = _build_disk_engine(search_application, disk_path)
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        maintainer.delete("restaurant", lambda record: record["rid"] == "007")
        expected = _result_tuples(engine.search(["burger"], k=5, size_threshold=20))
        epoch = engine.store.epoch
        # no close(): the swap must already be committed (one transaction per
        # replace), so a second connection — a crashed-and-restarted process —
        # sees it even though this connection never shut down cleanly
        second = DiskStore(disk_path, create=False)
        assert second.epoch == epoch
        reopened = DashEngine.open(disk_path, search_application, build_fooddb())
        assert _result_tuples(reopened.search(["burger"], k=5, size_threshold=20)) == expected

    def test_open_rejects_missing_and_empty_stores(
        self, search_application, fooddb, tmp_path
    ):
        with pytest.raises(DashEngineError):
            DashEngine.open(str(tmp_path / "nope.sqlite"), search_application, fooddb)
        empty = DiskStore(str(tmp_path / "empty.sqlite"))
        empty.close()
        with pytest.raises(DashEngineError):
            DashEngine.open(str(tmp_path / "empty.sqlite"), search_application, fooddb)

    def test_build_over_populated_disk_store_rejects_then_reopens(
        self, search_application, disk_path
    ):
        """A rejected build must release the file it opened: the natural
        recovery — DashEngine.open on the same path — works immediately."""
        from repro.datasets.fooddb import build_fooddb

        _database, engine = _build_disk_engine(search_application, disk_path)
        expected = _result_tuples(engine.search(["burger"], k=3, size_threshold=20))
        engine.store.close()
        with pytest.raises(DashEngineError):
            DashEngine.build(
                search_application, build_fooddb(), store="disk", store_path=disk_path
            )
        reopened = DashEngine.open(disk_path, search_application, build_fooddb())
        assert _result_tuples(reopened.search(["burger"], k=3, size_threshold=20)) == expected
        reopened.store.close()


# ----------------------------------------------------------------------
# identifier encoding
# ----------------------------------------------------------------------
class TestIdentifierEncoding:
    @pytest.mark.parametrize(
        "identifier",
        [
            ("American", 10),
            ("Thai",),
            ("quote'd \"text\"", 3.5, None),
            (True, 0),
            ("unicode-日本語", -7),
        ],
    )
    def test_roundtrip(self, identifier):
        assert decode_identifier(encode_identifier(identifier)) == identifier

    def test_non_scalar_components_rejected_at_write_time(self, tmp_path):
        """A nested tuple would serialize as a JSON array and decode as a
        list — an unequal, unhashable value that bricks the store on reopen.
        The write must fail instead."""
        from repro.store import StoreError

        store = DiskStore(str(tmp_path / "s.sqlite"))
        with pytest.raises(StoreError):
            store.add_posting("kw", ("a", (1, 2)), 1)
        with pytest.raises(StoreError):
            store.touch_fragment(("a", [1, 2]))
        store.close()
        # snapshots share the JSON round trip, so the writer rejects too
        memory = InMemoryStore()
        memory.add_posting("kw", ("a", (1, 2)), 1)
        with pytest.raises(StoreError):
            memory.snapshot(str(tmp_path / "s.snapshot"))


# ----------------------------------------------------------------------
# the epoch clock: restore validation and the generation sweep
# ----------------------------------------------------------------------
class TestEpochClock:
    def test_load_rejects_regressed_store_epoch(self):
        clock = EpochClock()
        with pytest.raises(ValueError):
            clock.load(2, {"kw": 3}, {})
        clock.load(3, {"kw": 3}, {("a", 1): 2})
        assert clock.epoch == 3
        assert clock.keyword_epoch("kw") == 3
        assert clock.fragment_epoch(("a", 1)) == 2

    def test_sweep_prunes_only_at_or_below_the_stamp(self):
        clock = EpochClock()
        clock.tick_posting("old", ("gone", 1))  # epoch 1
        clock.tick_posting("hot", ("live", 2))  # epoch 2
        clock.tick_fragment(("live", 3))  # epoch 3
        assert clock.sweep(1) == 2  # "old" and ("gone", 1)
        # Pruned (and never-seen) keys answer the sweep floor, not 0: a
        # consumer the sweep could not see keeps failing revalidation for
        # anything it stamped before the bound.
        assert clock.floor == 1
        assert clock.keyword_epoch("old") == 1
        assert clock.fragment_epoch(("gone", 1)) == 1
        assert clock.keyword_epoch("hot") == 2
        assert clock.fragment_epoch(("live", 3)) == 3
        with pytest.raises(ValueError):
            clock.sweep(-1)

    def test_sweep_never_flips_a_live_revalidation(self):
        # the safety argument, executed: for any stamp >= the sweep bound,
        # the freshness comparison answers the same before and after
        clock = EpochClock()
        for round_index in range(5):
            clock.tick_posting(f"kw{round_index}", ("frag", round_index))
        bound = 3
        stamps = range(bound, clock.epoch + 1)
        before = {
            (stamp, index): clock.fragment_epoch(("frag", index)) > stamp
            for stamp in stamps
            for index in range(5)
        }
        clock.sweep(bound)
        after = {
            (stamp, index): clock.fragment_epoch(("frag", index)) > stamp
            for stamp in stamps
            for index in range(5)
        }
        assert after == before


class TestServingSweep:
    def _serving(self, fooddb, search_application):
        from repro.datasets.fooddb import build_fooddb

        database = build_fooddb()
        engine = DashEngine.build(search_application, database)
        return database, engine, engine.serving(cache_size=32, workers=1)

    def test_sweep_keeps_live_entries_valid(self, fooddb, search_application):
        database, engine, service = self._serving(fooddb, search_application)
        first = service.search("burger", k=3, size_threshold=20)
        pruned = service.sweep_epochs()
        assert pruned >= 0
        hit = service.search("burger", k=3, size_threshold=20)
        assert hit.cached and hit.urls == first.urls
        # maintenance after a sweep still invalidates: ticks land above every
        # surviving stamp
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        maintainer.insert("restaurant", ("008", "Burger Barn", "American", 9, 4.1))
        refreshed = service.search("burger", k=3, size_threshold=20)
        assert not refreshed.cached

    def test_churn_memory_stays_bounded(self, search_application):
        """Continuous insert/delete churn with periodic sweeps: the clock
        tracks O(live fragments), not O(fragments ever seen)."""
        from repro.datasets.fooddb import build_fooddb

        database = build_fooddb()
        engine = DashEngine.build(search_application, database)
        service = engine.serving(cache_size=8, workers=1)
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        rounds = 30
        unswept_peak = 0
        for round_index in range(rounds):
            # every round creates a brand-new fragment identifier and then
            # removes it — a fresh tombstone per round without a sweep
            rid = f"churn-{round_index}"
            cuisine = f"Churnese{round_index}"
            maintainer.insert("restaurant", (rid, f"pop-up {round_index}", cuisine, 12, 3.0))
            maintainer.delete("restaurant", lambda record, rid=rid: record["rid"] == rid)
            service.search("burger", k=3, size_threshold=20)  # keeps a live entry
            _epoch, _keywords, tracked = engine.store.epochs.snapshot()
            unswept_peak = max(unswept_peak, tracked)
            service.sweep_epochs()
        live = engine.store.fragment_count()
        _epoch, tracked_keywords, tracked_fragments = engine.store.epochs.snapshot()
        # without sweeping, the per-round tombstones would accumulate ~rounds
        # entries; with sweeping the track stays at one round's working set
        assert tracked_fragments <= live + 4, (tracked_fragments, live)
        assert tracked_keywords <= 8, tracked_keywords
        assert unswept_peak <= live + 8, unswept_peak
        # the surviving cache entry still revalidates and still invalidates
        assert service.search("burger", k=3, size_threshold=20).cached
        maintainer.insert("restaurant", ("zz", "burger finale", "American", 10, 4.0))
        assert not service.search("burger", k=3, size_threshold=20).cached

    def test_sweep_respects_other_services_on_the_same_store(self, search_application):
        """A sweep driven by one service must not erase tombstones another
        service's older cache entries still revalidate against."""
        from repro.datasets.fooddb import build_fooddb

        database = build_fooddb()
        engine = DashEngine.build(search_application, database)
        service_a = engine.serving(cache_size=16, workers=1)
        service_b = engine.serving(cache_size=16, workers=1)
        stale_to_be = service_b.search("burger", k=3, size_threshold=20)
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        maintainer.insert("restaurant", ("008", "Burger Loft", "American", 9, 4.2))
        # service_a recomputes (fresh stamp) and sweeps; service_b's older
        # entry must still fail revalidation afterwards
        service_a.search("burger", k=3, size_threshold=20)
        service_a.sweep_epochs()
        refreshed = service_b.search("burger", k=3, size_threshold=20)
        assert not refreshed.cached, "service_b's pre-update entry must still drop"
        assert refreshed.epoch > stale_to_be.epoch
        # once service_b closes, its old stamps no longer pin the clock
        service_b.close()
        service_a.search("burger", k=3, size_threshold=20)
        service_a.sweep_epochs()
        _epoch, _keywords, tracked = engine.store.epochs.snapshot()
        assert tracked == 0
        service_a.close()

    def test_abandoned_service_stops_pinning_the_sweep(self, search_application):
        """A service dropped without close() must not freeze the sweep bound
        forever — its weakly-held stamp provider dies with it."""
        import gc

        from repro.datasets.fooddb import build_fooddb

        database = build_fooddb()
        engine = DashEngine.build(search_application, database)
        service = engine.serving(cache_size=16, workers=1)
        abandoned = engine.serving(cache_size=16, workers=1)
        abandoned.search("burger", k=3, size_threshold=20)  # old stamp in its cache
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        maintainer.insert("restaurant", ("008", "Burger Attic", "American", 9, 4.0))
        service.search("burger", k=3, size_threshold=20)
        service.sweep_epochs()
        _epoch, _keywords, pinned = engine.store.epochs.snapshot()
        assert pinned > 0, "the abandoned service's old stamp must pin the bound while alive"
        del abandoned
        gc.collect()
        service.sweep_epochs()
        _epoch, _keywords, tracked = engine.store.epochs.snapshot()
        assert tracked == 0
        service.close()

    def test_disk_store_sweep_prunes_persisted_rows(self, search_application, disk_path):
        database, engine = _build_disk_engine(search_application, disk_path)
        service = engine.serving(cache_size=8, workers=1)
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        maintainer.insert("restaurant", ("churn-1", "pop-up", "Churnese", 12, 3.0))
        maintainer.delete("restaurant", lambda record: record["rid"] == "churn-1")
        service.search("burger", k=3, size_threshold=20)
        assert service.sweep_epochs() > 0
        state_before = engine.store.epochs.state()
        engine.store.close()
        # the sweep reached the persisted tables: a reopened clock matches
        reopened = DiskStore(disk_path, create=False)
        assert reopened.epochs.state() == state_before
