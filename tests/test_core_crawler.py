"""Tests for the MapReduce crawling/indexing algorithms (stepwise vs integrated)."""

import pytest

from repro.core.crawler import IntegratedCrawler, QueryLayout, StepwiseCrawler
from repro.core.fragments import derive_fragments
from repro.core.fragment_index import InvertedFragmentIndex
from repro.datasets.tpch import TINY, build_tpch, tpch_queries
from repro.mapreduce import Cluster, CostModel, DistributedFileSystem, MapReduceRuntime


def _index_as_dict(index: InvertedFragmentIndex):
    return {
        keyword: tuple((tuple(p.document_id), p.term_frequency) for p in postings)
        for keyword, postings in index.iter_items()
    }


class TestQueryLayout:
    def test_contributed_and_projected_attributes(self, fooddb, search_query):
        layout = QueryLayout(search_query, fooddb)
        assert layout.projected["restaurant"] == ("name", "budget", "rate")
        assert layout.projected["comment"] == ("comment", "date")
        assert layout.projected["customer"] == ("uname",)
        # right-hand join keys are dropped from the joined output
        assert "rid" not in layout.contributed["comment"]
        assert "uid" not in layout.contributed["customer"]

    def test_selection_owners(self, fooddb, search_query):
        layout = QueryLayout(search_query, fooddb)
        assert layout.selection_owner == {"cuisine": "restaurant", "budget": "restaurant"}

    def test_join_attributes(self, fooddb, search_query):
        layout = QueryLayout(search_query, fooddb)
        assert layout.join_attributes["restaurant"] == ("rid",)
        assert set(layout.join_attributes["comment"]) == {"rid", "uid"}
        assert layout.join_attributes["customer"] == ("uid",)

    def test_fragment_identifier_extraction(self, fooddb, search_query):
        layout = QueryLayout(search_query, fooddb)
        assert layout.fragment_identifier({"cuisine": "Thai", "budget": 10}) == ("Thai", 10)
        assert layout.fragment_identifier({"cuisine": None, "budget": 10}) is None

    def test_tpch_q2_layout(self, tiny_tpch, tiny_tpch_queries):
        layout = QueryLayout(tiny_tpch_queries["Q2"], tiny_tpch)
        assert layout.selection_owner["c_custkey"] == "customer"
        assert layout.selection_owner["l_quantity"] == "lineitem"
        assert layout.compact_key_attributes("lineitem") == ("l_quantity", "l_orderkey")
        # the surviving name of lineitem's dropped join key is orders' key
        assert layout.surviving_name("l_orderkey") == "o_orderkey"


class TestCrawlersOnFooddb:
    @pytest.fixture(scope="class")
    def reference(self, fooddb, search_query):
        return InvertedFragmentIndex.from_fragments(derive_fragments(search_query, fooddb))

    @pytest.fixture(scope="class")
    def stepwise_result(self, fooddb, search_query):
        return StepwiseCrawler(search_query, fooddb).crawl()

    @pytest.fixture(scope="class")
    def integrated_result(self, fooddb, search_query):
        return IntegratedCrawler(search_query, fooddb).crawl()

    def test_stepwise_matches_reference(self, stepwise_result, reference):
        assert _index_as_dict(stepwise_result.index) == _index_as_dict(reference)

    def test_integrated_matches_reference(self, integrated_result, reference):
        assert _index_as_dict(integrated_result.index) == _index_as_dict(reference)

    def test_fragment_sizes_preserved(self, integrated_result, reference):
        assert integrated_result.index.fragment_sizes == reference.fragment_sizes

    def test_stage_labels(self, stepwise_result, integrated_result):
        assert set(stepwise_result.stage_seconds()) == {"join", "group", "index"}
        assert set(integrated_result.stage_seconds()) == {"join", "extract", "consolidate"}

    def test_metrics_are_populated(self, stepwise_result):
        assert stepwise_result.simulated_seconds() > 0
        assert stepwise_result.metrics.total_shuffle_bytes > 0
        assert stepwise_result.export_bytes > 0

    def test_integrated_join_stage_moves_less_data(self, stepwise_result, integrated_result):
        """The integrated algorithm's core claim: projection attributes do not
        travel through the join pipeline, so its join stage shuffles less."""
        sw_join = stepwise_result.metrics.stage_shuffle_bytes()["join"]
        int_join = integrated_result.metrics.stage_shuffle_bytes()["join"]
        assert int_join < sw_join


class TestCrawlersOnTpch:
    @pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3"])
    def test_equivalence_on_tiny_tpch(self, tiny_tpch, tiny_tpch_queries, query_name):
        query = tiny_tpch_queries[query_name]
        reference = InvertedFragmentIndex.from_fragments(derive_fragments(query, tiny_tpch))
        stepwise = StepwiseCrawler(query, tiny_tpch).crawl()
        integrated = IntegratedCrawler(query, tiny_tpch).crawl()
        assert _index_as_dict(stepwise.index) == _index_as_dict(reference)
        assert _index_as_dict(integrated.index) == _index_as_dict(reference)
        assert stepwise.fragment_count == integrated.fragment_count == len(
            derive_fragments(query, tiny_tpch)
        )

    def test_custom_runtime_and_reducer_count(self, tiny_tpch, tiny_tpch_queries):
        cluster = Cluster.default(num_nodes=2)
        runtime = MapReduceRuntime(cluster, DistributedFileSystem(cluster), CostModel(data_time_scale=10))
        result = IntegratedCrawler(
            tiny_tpch_queries["Q1"], tiny_tpch, runtime=runtime, num_reduce_tasks=2
        ).crawl()
        reference = InvertedFragmentIndex.from_fragments(
            derive_fragments(tiny_tpch_queries["Q1"], tiny_tpch)
        )
        assert _index_as_dict(result.index) == _index_as_dict(reference)

    def test_reduce_task_count_does_not_change_results(self, tiny_tpch, tiny_tpch_queries):
        one = StepwiseCrawler(tiny_tpch_queries["Q2"], tiny_tpch, num_reduce_tasks=1).crawl()
        eight = StepwiseCrawler(tiny_tpch_queries["Q2"], tiny_tpch, num_reduce_tasks=8).crawl()
        assert _index_as_dict(one.index) == _index_as_dict(eight.index)
