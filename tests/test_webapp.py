"""Tests for query strings, the web-application model and the web server."""

import pytest

from repro.webapp import DbPage, QueryString, QueryStringSpec, WebServer, coerce_bindings
from repro.webapp.application import parameter_types
from repro.webapp.rendering import page_signature
from repro.webapp.request import QueryStringError
from repro.webapp.server import WebServerError


class TestQueryString:
    def test_parse_and_get(self):
        qs = QueryString.parse("c=American&l=10&u=15")
        assert qs.get("c") == "American"
        assert qs.get("u") == "15"
        assert qs.get("missing") is None

    def test_roundtrip_str(self):
        qs = QueryString.parse("c=American&l=10&u=15")
        assert str(qs) == "c=American&l=10&u=15"

    def test_percent_encoding(self):
        qs = QueryString.parse("c=Middle%20East&l=1")
        assert qs.get("c") == "Middle East"

    def test_malformed_component(self):
        with pytest.raises(QueryStringError):
            QueryString.parse("novalue")

    def test_leading_question_mark_ignored(self):
        assert QueryString.parse("?c=Thai").get("c") == "Thai"


class TestQueryStringSpec:
    def test_parse_to_bindings(self, search_spec):
        assert search_spec.parse("c=American&l=10&u=15") == {
            "cuisine": "American", "min": "10", "max": "15",
        }

    def test_missing_field_raises(self, search_spec):
        with pytest.raises(QueryStringError):
            search_spec.parse("c=American&l=10")

    def test_format_is_reverse_of_parse(self, search_spec):
        qs = search_spec.format({"cuisine": "Thai", "min": 10, "max": 10})
        assert str(qs) == "c=Thai&l=10&u=10"

    def test_format_missing_binding(self, search_spec):
        with pytest.raises(QueryStringError):
            search_spec.format({"cuisine": "Thai"})

    def test_field_parameter_lookups(self, search_spec):
        assert search_spec.field_for("min") == "l"
        assert search_spec.parameter_for("u") == "max"
        with pytest.raises(QueryStringError):
            search_spec.field_for("nope")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(QueryStringError):
            QueryStringSpec((("c", "a"), ("c", "b")))


class TestWebApplication:
    def test_parameter_types_follow_attribute_domains(self, fooddb, search_query):
        types = parameter_types(search_query, fooddb)
        assert types["min"].value == "int"
        assert types["cuisine"].value == "string"

    def test_coerce_bindings(self, fooddb, search_query):
        coerced = coerce_bindings(search_query, fooddb, {"cuisine": "Thai", "min": "10", "max": "15"})
        assert coerced == {"cuisine": "Thai", "min": 10, "max": 15}

    def test_generate_page_p1(self, fooddb, search_application):
        page = search_application.generate_page(fooddb, "c=American&l=10&u=15")
        assert page.record_count == 4
        assert page.contains_keyword("burger")
        assert "Wandy's" in page.text
        assert page.url == "www.example.com/Search?c=American&l=10&u=15"

    def test_generate_empty_page(self, fooddb, search_application):
        page = search_application.generate_page(fooddb, "c=French&l=10&u=15")
        assert page.record_count == 0

    def test_page_html_contains_table(self, fooddb, search_application):
        page = search_application.generate_page(fooddb, "c=Thai&l=10&u=10")
        assert page.html.startswith("<html>")
        assert "<table>" in page.html

    def test_url_for_bindings(self, fooddb, search_application):
        url = search_application.url_for_bindings({"cuisine": "Thai", "min": 10, "max": 10})
        assert url == "www.example.com/Search?c=Thai&l=10&u=10"

    def test_enumerate_query_strings_covers_all_valid_ranges(self, fooddb, search_application):
        query_strings = search_application.enumerate_query_strings(fooddb)
        # 2 cuisines x ordered pairs of 4 budget values (l <= u): 2 * 10 = 20
        assert len(query_strings) == 20
        assert all(qs.get("l") <= qs.get("u") or int(qs.get("l")) <= int(qs.get("u"))
                   for qs in query_strings)

    def test_page_signature_detects_duplicates(self, fooddb, search_application):
        page_a = search_application.generate_page(fooddb, "c=Thai&l=9&u=11")
        page_b = search_application.generate_page(fooddb, "c=Thai&l=10&u=10")
        assert page_signature(page_a) == page_signature(page_b)


class TestWebServer:
    def test_get_resolves_application(self, fooddb_server):
        page = fooddb_server.get("www.example.com/Search?c=American&l=10&u=20")
        assert page.record_count == 5  # the paper's P2

    def test_post_equivalent_to_get(self, fooddb_server):
        get_page = fooddb_server.get("www.example.com/Search?c=Thai&l=10&u=10")
        post_page = fooddb_server.post("www.example.com/Search", {"c": "Thai", "l": "10", "u": "10"})
        assert page_signature(get_page) == page_signature(post_page)

    def test_post_percent_encodes_reserved_characters(self, fooddb_server):
        """A form value containing & or = must survive the synthesized query string."""
        page = fooddb_server.post(
            "www.example.com/Search", {"c": "Thai&Mex=Fusion", "l": "10", "u": "15"}
        )
        # the value parsed back as one field (no records match, but no error)
        assert page.record_count == 0
        assert "Thai%26Mex%3DFusion" in page.url

    def test_post_round_trips_spaces(self, fooddb_server):
        page = fooddb_server.post(
            "www.example.com/Search", {"c": "Middle East", "l": "10", "u": "15"}
        )
        assert page.record_count == 0
        assert QueryString.parse(page.url.split("?", 1)[1]).get("c") == "Middle East"

    def test_counts_invocations(self, fooddb, search_application):
        server = WebServer(fooddb, host="www.example.com")
        server.deploy(search_application)
        server.get("www.example.com/Search?c=Thai&l=10&u=10")
        server.get("www.example.com/Search?c=Thai&l=10&u=10")
        assert server.invocation_count == 2
        server.reset_counters()
        assert server.invocation_count == 0

    def test_unknown_application(self, fooddb_server):
        with pytest.raises(WebServerError):
            fooddb_server.get("www.example.com/Unknown?x=1")

    def test_url_without_query_string(self, fooddb_server):
        with pytest.raises(WebServerError):
            fooddb_server.get("www.example.com/Search")

    def test_duplicate_deploy_rejected(self, fooddb, search_application):
        server = WebServer(fooddb, host="www.example.com")
        server.deploy(search_application)
        with pytest.raises(WebServerError):
            server.deploy(search_application)
