"""The pluggable fragment-store layer: backend parity and store semantics.

The load-bearing guarantee is that the storage backend is *invisible*: a
:class:`ShardedStore` with any shard count — and the persistent
:class:`DiskStore` — must return exactly the search results, scores and
incremental-maintenance outcomes of the single-partition
:class:`InMemoryStore`.  The parity suite checks that on the fooddb running
example, on randomized fooddb-shaped databases (hypothesis) and on a tiny
TPC-H workload; snapshot round-trips must preserve the whole store state
(both sections plus the epoch clock) across every backend pairing.
"""

import os
import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import derive_fragments, fragment_sizes
from repro.core.incremental import IncrementalMaintainer
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.fooddb import (
    build_fooddb,
    comment_schema,
    customer_schema,
    fooddb_search_query,
    restaurant_schema,
)
from repro.db.database import Database
from repro.db.sqlparse import parse_psj_query
from repro.store import (
    DiskStore,
    FragmentStore,
    InMemoryStore,
    ShardedStore,
    StoreError,
    resolve_store,
)
from repro.webapp.request import QueryStringSpec

SHARD_COUNTS = (1, 2, 8)


def _tmp_disk_store() -> DiskStore:
    """A DiskStore over a fresh temp file (the OS reclaims the tmp dir)."""
    return DiskStore(os.path.join(tempfile.mkdtemp(prefix="repro-store-test-"), "store.sqlite"))
SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
RELAXED = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _build_searcher(query, fragments, store, uri="example.com/Search", spec=SPEC):
    index = InvertedFragmentIndex.from_fragments(fragments, store=store)
    graph = FragmentGraph.build(query, fragment_sizes(fragments), store=store)
    return index, graph, TopKSearcher(index, graph, UrlFormulator(query, spec, uri))


def _result_tuples(results):
    return [(r.url, r.score, r.fragments, r.size) for r in results]


def _index_as_dict(index):
    return {
        keyword: tuple((tuple(p.document_id), p.term_frequency) for p in postings)
        for keyword, postings in index.iter_items()
    }


# ----------------------------------------------------------------------
# strategies (fooddb-shaped random databases, as in test_properties)
# ----------------------------------------------------------------------
cuisines = st.sampled_from(["American", "Thai", "Italian", "Mexican", "Nepali"])
budgets = st.integers(min_value=5, max_value=30)
words = st.sampled_from(
    ["burger", "fries", "coffee", "soup", "noodle", "spicy", "bland", "great", "awful", "crispy"]
)
comments = st.lists(words, min_size=1, max_size=5).map(" ".join)


@st.composite
def food_databases(draw):
    database = Database("prop-fooddb")
    database.create_relation(restaurant_schema())
    database.create_relation(customer_schema())
    database.create_relation(comment_schema())
    num_restaurants = draw(st.integers(min_value=1, max_value=8))
    num_customers = draw(st.integers(min_value=1, max_value=3))
    for index in range(num_restaurants):
        database.insert(
            "restaurant",
            (f"r{index}", draw(comments), draw(cuisines), draw(budgets), 4.0),
        )
    for index in range(num_customers):
        database.insert("customer", (f"u{index}", draw(words)))
    for index in range(draw(st.integers(min_value=0, max_value=10))):
        database.insert(
            "comment",
            (
                f"c{index}",
                f"r{draw(st.integers(min_value=0, max_value=num_restaurants - 1))}",
                f"u{draw(st.integers(min_value=0, max_value=num_customers - 1))}",
                draw(comments),
                "01/01",
            ),
        )
    return database


def _prop_query(database):
    return parse_psj_query(
        "SELECT name, budget, rate, comment, uname, date "
        "FROM (restaurant LEFT JOIN comment) JOIN customer "
        "WHERE cuisine = $cuisine AND budget BETWEEN $min AND $max",
        database,
        name="Search",
    )


# ----------------------------------------------------------------------
# store semantics
# ----------------------------------------------------------------------
class TestResolveStore:
    def test_defaults_to_memory(self):
        assert isinstance(resolve_store(None), InMemoryStore)
        assert isinstance(resolve_store("memory"), InMemoryStore)

    def test_sharded_variants(self):
        assert resolve_store("sharded").shard_count == 4
        assert resolve_store("sharded", shards=8).shard_count == 8
        assert resolve_store(3).shard_count == 3
        assert resolve_store(None, shards=2).shard_count == 2

    def test_memory_with_shards_is_a_conflict(self):
        with pytest.raises(StoreError):
            resolve_store("memory", shards=2)

    def test_inconsistent_shard_specs_rejected(self):
        with pytest.raises(StoreError):
            resolve_store(2, shards=8)
        with pytest.raises(StoreError):
            resolve_store("sharded", shards=0)
        with pytest.raises(StoreError):
            resolve_store(None, shards=0)
        assert resolve_store(2, shards=2).shard_count == 2

    def test_engine_rejects_populated_store(self, fooddb, search_application):
        from repro.core.engine import DashEngine, DashEngineError

        store = ShardedStore(shards=2)
        DashEngine.build(search_application, fooddb, store=store)
        with pytest.raises(DashEngineError):
            DashEngine.build(search_application, fooddb, store=store)

    def test_instances_and_factories_pass_through(self):
        store = ShardedStore(shards=2)
        assert resolve_store(store) is store
        assert resolve_store(store, shards=2) is store
        assert isinstance(resolve_store(InMemoryStore), InMemoryStore)
        with pytest.raises(StoreError):
            resolve_store(store, shards=8)
        with pytest.raises(StoreError):
            resolve_store(InMemoryStore, shards=8)

    def test_invalid_specs_rejected(self):
        with pytest.raises(StoreError):
            resolve_store("bogus")
        with pytest.raises(StoreError):
            resolve_store(lambda: "not a store")
        with pytest.raises(StoreError):
            ShardedStore(shards=0)

    def test_disk_spec(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        store = resolve_store("disk", path=path)
        assert isinstance(store, DiskStore)
        assert store.path == path
        store.close()
        # without a path the database lands in a fresh temp file
        anonymous = resolve_store("disk")
        assert isinstance(anonymous, DiskStore)
        assert os.path.exists(anonymous.path)
        anonymous.close()

    def test_disk_spec_conflicts(self, tmp_path):
        with pytest.raises(StoreError):
            resolve_store("disk", shards=2)
        with pytest.raises(StoreError):
            resolve_store("memory", path=str(tmp_path / "x.sqlite"))
        with pytest.raises(StoreError):
            resolve_store(None, path=str(tmp_path / "x.sqlite"))
        with pytest.raises(StoreError):
            DiskStore(str(tmp_path / "missing.sqlite"), create=False)


@pytest.mark.parametrize(
    "make_store",
    [InMemoryStore, lambda: ShardedStore(shards=4), _tmp_disk_store],
    ids=["memory", "sharded", "disk"],
)
class TestStoreSemantics:
    def test_remove_fragment_touches_only_affected_lists(self, make_store):
        store = make_store()
        store.add_posting("shared", ("a", 1), 3)
        store.add_posting("shared", ("b", 2), 2)
        store.add_posting("only-a", ("a", 1), 1)
        store.remove_fragment(("a", 1))
        assert not store.has_fragment(("a", 1))
        assert store.fragment_frequency("only-a") == 0
        assert "only-a" not in store.vocabulary()
        assert [tuple(p) for p in store.postings("shared")] == [(("b", 2), 2)]
        assert store.fragment_size(("b", 2)) == 2

    def test_replace_fragment_is_a_single_swap(self, make_store):
        store = make_store()
        store.add_posting("old", ("a", 1), 5)
        store.replace_fragment(("a", 1), {"new": 2, "zero": 0})
        assert store.fragment_term_frequencies(("a", 1)) == {"new": 2}
        assert store.fragment_size(("a", 1)) == 2
        assert store.fragment_frequency("old") == 0

    def test_replace_fragment_accumulates_duplicate_pairs(self, make_store):
        # pair form: keywords that canonicalise to the same term must sum,
        # exactly as repeated add_posting calls would
        store = make_store()
        store.add_posting("stale", ("a", 1), 9)
        store.replace_fragment(("a", 1), [("foo", 2), ("foo", 3)])
        assert store.fragment_size(("a", 1)) == 5
        assert [tuple(p) for p in store.postings("foo")] == [(("a", 1), 3), (("a", 1), 2)]

    def test_graph_section_independent_of_postings(self, make_store):
        store = make_store()
        store.add_node(("a", 1), 8)
        store.add_node(("a", 2), 9)
        store.add_edge(("a", 1), ("a", 2))
        assert store.edge_count() == 1
        assert set(store.neighbors(("a", 1))) == {("a", 2)}
        assert store.fragment_count() == 0  # postings section untouched
        store.remove_edge(("a", 1), ("a", 2))
        assert store.edge_count() == 0


def test_index_replace_matches_add_for_case_colliding_keys():
    """Keys that lower-case to the same keyword accumulate on both paths."""
    reference = InvertedFragmentIndex()
    reference.add_fragment(("a", 1), {"Foo": 2, "foo": 3})
    reference.finalize()
    replaced = InvertedFragmentIndex()
    replaced.add_fragment(("a", 1), {"x": 1})
    replaced.replace_fragment(("a", 1), {"Foo": 2, "foo": 3})
    replaced.finalize()
    assert _index_as_dict(replaced) == _index_as_dict(reference)
    assert replaced.fragment_size(("a", 1)) == 5


class TestShardedStore:
    def test_routing_is_stable_and_total(self):
        store = ShardedStore(shards=8)
        identifiers = [("cuisine%d" % i, i) for i in range(200)]
        for identifier in identifiers:
            store.add_posting("kw", identifier, 1)
            assert store.shard_of(identifier) == store.shard_of(identifier)
        assert store.fragment_count() == 200
        assert sum(store.shard(i).fragment_count() for i in range(8)) == 200
        # more than one shard actually gets data
        assert sum(1 for i in range(8) if store.shard(i).fragment_count()) > 1

    def test_merged_postings_sorted_like_memory(self):
        memory, sharded = InMemoryStore(), ShardedStore(shards=8)
        for store in (memory, sharded):
            for i in range(50):
                store.add_posting("kw", ("c%d" % (i % 7), i), (i * 13) % 11 + 1)
        assert [tuple(p) for p in sharded.postings("kw")] == [tuple(p) for p in memory.postings("kw")]
        assert sharded.document_frequencies() == memory.document_frequencies()
        assert sharded.fragment_sizes() == memory.fragment_sizes()
        assert dict(sharded.iter_items()) == dict(memory.iter_items())

    def test_parallel_fan_out_merges_in_task_order(self):
        store = ShardedStore(shards=4, parallel_threshold=1)
        for i in range(8):
            store.add_posting("kw", ("c", i), 1)
        assert store._fan_out()
        assert store.run_parallel([lambda i=i: i for i in range(16)]) == list(range(16))


class TestSearchResultContains:
    def test_scalar_lookup_returns_false(self, fooddb, search_query, search_spec):
        fragments = derive_fragments(search_query, fooddb)
        _index, _graph, searcher = _build_searcher(
            search_query, fragments, InMemoryStore(), "www.example.com/Search", search_spec
        )
        result = searcher.search(["burger"], k=1, size_threshold=20)[0]
        assert 10 not in result  # scalar: must not raise TypeError
        assert None not in result
        assert ("American", 10) in result
        assert ["American", 10] in result  # iterable identifiers still coerce


# ----------------------------------------------------------------------
# backend parity: fooddb running example
# ----------------------------------------------------------------------
class TestFooddbParity:
    @pytest.fixture(scope="class")
    def workload(self):
        database = build_fooddb()
        query = fooddb_search_query(database)
        return database, query, derive_fragments(query, database)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_search_parity(self, workload, shards):
        _database, query, fragments = workload
        _, _, reference = _build_searcher(query, fragments, InMemoryStore())
        _, _, sharded = _build_searcher(query, fragments, ShardedStore(shards=shards))
        for keywords in (["burger"], ["coffee", "fries"], ["spicy"], ["nonexistent"]):
            for k in (1, 3, 10):
                for s in (1, 20, 1000):
                    expected = _result_tuples(reference.search(keywords, k=k, size_threshold=s))
                    actual = _result_tuples(sharded.search(keywords, k=k, size_threshold=s))
                    assert actual == expected
        assert sharded.last_statistics.dequeues == reference.last_statistics.dequeues
        assert sharded.last_statistics.expansions == reference.last_statistics.expansions

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_index_parity(self, workload, shards):
        _database, _query, fragments = workload
        reference = InvertedFragmentIndex.from_fragments(fragments, store=InMemoryStore())
        sharded = InvertedFragmentIndex.from_fragments(fragments, store=ShardedStore(shards=shards))
        assert _index_as_dict(sharded) == _index_as_dict(reference)
        assert sharded.fragment_sizes == reference.fragment_sizes
        assert sharded.document_frequencies() == reference.document_frequencies()
        assert set(sharded.fragment_ids()) == set(reference.fragment_ids())
        assert sharded.approximate_bytes() == reference.approximate_bytes()

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_incremental_maintenance_parity(self, shards):
        bundles = []
        for store in (InMemoryStore(), ShardedStore(shards=shards)):
            database = build_fooddb()
            query = fooddb_search_query(database)
            fragments = derive_fragments(query, database)
            index, graph, _searcher = _build_searcher(query, fragments, store)
            bundles.append((database, query, index, graph, IncrementalMaintainer(query, database, index, graph)))

        updates = [
            ("insert", "comment", ("207", "001", "120", "great milkshake", "07/12")),
            ("insert", "restaurant", ("008", "Pasta Palace", "Italian", 14, 4.6)),
            ("insert", "restaurant", ("009", "Grill House", "American", 11, 3.5)),
            ("delete", "comment", lambda record: record["cid"] == "203"),
            ("delete", "restaurant", lambda record: record["rid"] == "007"),
        ]
        affected = []
        for _database, _query, _index, _graph, maintainer in bundles:
            touched = []
            for action, relation, payload in updates:
                if action == "insert":
                    touched.append(maintainer.insert(relation, payload))
                else:
                    touched.append(maintainer.delete(relation, payload))
            affected.append(touched)
        assert affected[0] == affected[1]

        (_, query0, index0, graph0, _), (_, _query1, index1, graph1, _) = bundles
        assert _index_as_dict(index1) == _index_as_dict(index0)
        assert index1.fragment_sizes == index0.fragment_sizes
        assert graph1.edge_count == graph0.edge_count
        assert set(graph1.fragment_ids()) == set(graph0.fragment_ids())
        for identifier in graph0.fragment_ids():
            assert graph1.neighbors(identifier) == graph0.neighbors(identifier)
        # both stay consistent with a from-scratch rebuild
        rebuilt = InvertedFragmentIndex.from_fragments(derive_fragments(query0, bundles[0][0]))
        assert _index_as_dict(index0) == _index_as_dict(rebuilt)


# ----------------------------------------------------------------------
# backend parity: the persistent disk store
# ----------------------------------------------------------------------
class TestDiskStoreParity:
    @pytest.fixture(scope="class")
    def workload(self):
        database = build_fooddb()
        query = fooddb_search_query(database)
        return database, query, derive_fragments(query, database)

    def test_search_parity(self, workload, tmp_path):
        _database, query, fragments = workload
        _, _, reference = _build_searcher(query, fragments, InMemoryStore())
        _, _, disk = _build_searcher(query, fragments, DiskStore(str(tmp_path / "s.sqlite")))
        for keywords in (["burger"], ["coffee", "fries"], ["spicy"], ["nonexistent"]):
            for k in (1, 3, 10):
                for s in (1, 20, 1000):
                    expected = _result_tuples(reference.search(keywords, k=k, size_threshold=s))
                    actual = _result_tuples(disk.search(keywords, k=k, size_threshold=s))
                    assert actual == expected
        assert disk.last_statistics.dequeues == reference.last_statistics.dequeues
        assert disk.last_statistics.expansions == reference.last_statistics.expansions

    def test_index_parity(self, workload, tmp_path):
        _database, _query, fragments = workload
        reference = InvertedFragmentIndex.from_fragments(fragments, store=InMemoryStore())
        disk = InvertedFragmentIndex.from_fragments(
            fragments, store=DiskStore(str(tmp_path / "s.sqlite"))
        )
        assert _index_as_dict(disk) == _index_as_dict(reference)
        assert disk.fragment_sizes == reference.fragment_sizes
        assert disk.document_frequencies() == reference.document_frequencies()
        assert set(disk.fragment_ids()) == set(reference.fragment_ids())
        assert disk.approximate_bytes() == reference.approximate_bytes()
        # the write path ticks the shared clock identically on both backends
        assert disk.store.epoch == reference.store.epoch

    def test_incremental_maintenance_parity(self, tmp_path):
        bundles = []
        for store in (InMemoryStore(), DiskStore(str(tmp_path / "s.sqlite"))):
            database = build_fooddb()
            query = fooddb_search_query(database)
            fragments = derive_fragments(query, database)
            index, graph, _searcher = _build_searcher(query, fragments, store)
            bundles.append(
                (database, query, index, graph, IncrementalMaintainer(query, database, index, graph))
            )

        updates = [
            ("insert", "comment", ("207", "001", "120", "great milkshake", "07/12")),
            ("insert", "restaurant", ("008", "Pasta Palace", "Italian", 14, 4.6)),
            ("insert", "restaurant", ("009", "Grill House", "American", 11, 3.5)),
            ("delete", "comment", lambda record: record["cid"] == "203"),
            ("delete", "restaurant", lambda record: record["rid"] == "007"),
        ]
        affected = []
        for _database, _query, _index, _graph, maintainer in bundles:
            touched = []
            for action, relation, payload in updates:
                if action == "insert":
                    touched.append(maintainer.insert(relation, payload))
                else:
                    touched.append(maintainer.delete(relation, payload))
            affected.append(touched)
        assert affected[0] == affected[1]

        (_, query0, index0, graph0, _), (_, _query1, index1, graph1, _) = bundles
        assert _index_as_dict(index1) == _index_as_dict(index0)
        assert index1.fragment_sizes == index0.fragment_sizes
        assert graph1.edge_count == graph0.edge_count
        assert set(graph1.fragment_ids()) == set(graph0.fragment_ids())
        for identifier in graph0.fragment_ids():
            assert graph1.neighbors(identifier) == graph0.neighbors(identifier)
        rebuilt = InvertedFragmentIndex.from_fragments(derive_fragments(query0, bundles[0][0]))
        assert _index_as_dict(index1) == _index_as_dict(rebuilt)

    def test_unserializable_identifier_rejected(self, tmp_path):
        store = DiskStore(str(tmp_path / "s.sqlite"))
        with pytest.raises(StoreError):
            store.add_posting("kw", (object(),), 1)


# ----------------------------------------------------------------------
# snapshots: every backend pairing round-trips the whole store state
# ----------------------------------------------------------------------
class TestSnapshots:
    @pytest.fixture()
    def populated(self):
        database = build_fooddb()
        query = fooddb_search_query(database)
        fragments = derive_fragments(query, database)
        store = InMemoryStore()
        _build_searcher(query, fragments, store)
        return store

    @pytest.mark.parametrize(
        "target", [None, "sharded", "disk"], ids=["memory", "sharded", "disk"]
    )
    def test_roundtrip(self, populated, tmp_path, target):
        path = str(tmp_path / "store.snapshot")
        assert populated.snapshot(path) == path
        restored = FragmentStore.from_snapshot(
            path, store=target, shards=2 if target == "sharded" else None
        )
        assert dict(restored.iter_items()) == dict(populated.iter_items())
        assert restored.fragment_sizes() == populated.fragment_sizes()
        assert set(restored.node_ids()) == set(populated.node_ids())
        assert restored.edge_count() == populated.edge_count()
        for identifier in populated.node_ids():
            assert set(restored.neighbors(identifier)) == set(populated.neighbors(identifier))
            assert restored.node_keyword_count(identifier) == populated.node_keyword_count(
                identifier
            )
        # the clock travels with the data, exactly
        assert restored.epochs.state() == populated.epochs.state()

    def test_snapshot_from_disk_store(self, populated, tmp_path):
        sqlite_path = str(tmp_path / "restored.sqlite")
        disk = FragmentStore.from_snapshot(
            populated.snapshot(str(tmp_path / "a.snapshot")),
            store="disk",
            store_path=sqlite_path,
        )
        assert disk.path == sqlite_path  # the restore lands where asked
        back = FragmentStore.from_snapshot(disk.snapshot(str(tmp_path / "b.snapshot")))
        assert dict(back.iter_items()) == dict(populated.iter_items())
        assert back.epochs.state() == populated.epochs.state()

    def test_inconsistent_sizes_rejected(self, populated, tmp_path):
        import json

        path = populated.snapshot(str(tmp_path / "store.snapshot"))
        payload = json.load(open(path))
        payload["sizes"][0][1] += 1  # corrupt one stored size
        json.dump(payload, open(path, "w"))
        with pytest.raises(StoreError):
            FragmentStore.from_snapshot(path)

    def test_failed_disk_restore_cleans_up_for_retry(self, populated, tmp_path):
        """A corrupt restore must not strand a half-populated sqlite file:
        retrying at the same store_path with a good snapshot succeeds."""
        import json

        good = populated.snapshot(str(tmp_path / "good.snapshot"))
        bad = str(tmp_path / "bad.snapshot")
        payload = json.load(open(good))
        payload["sizes"][0][1] += 1
        json.dump(payload, open(bad, "w"))
        sqlite_path = str(tmp_path / "restored.sqlite")
        with pytest.raises(StoreError):
            FragmentStore.from_snapshot(bad, store="disk", store_path=sqlite_path)
        assert not os.path.exists(sqlite_path), "partial file must be removed"
        restored = FragmentStore.from_snapshot(good, store="disk", store_path=sqlite_path)
        assert dict(restored.iter_items()) == dict(populated.iter_items())
        restored.close()

    def test_restore_requires_empty_store(self, populated, tmp_path):
        path = populated.snapshot(str(tmp_path / "store.snapshot"))
        with pytest.raises(StoreError):
            FragmentStore.from_snapshot(path, store=populated)

    @pytest.mark.parametrize(
        "target", [None, "sharded", "disk"], ids=["memory", "sharded", "disk"]
    )
    def test_block_directories_rebuild_identically(self, populated, tmp_path, target):
        """Snapshots carry postings, not blocks: FORMAT_VERSION stays 1 and
        every backend rebuilds bit-identical block directories on restore."""
        from repro.store.blocks import BLOCK_SIZE

        path = populated.snapshot(str(tmp_path / "store.snapshot"))
        restored = FragmentStore.from_snapshot(
            path,
            store=target,
            shards=2 if target == "sharded" else None,
            store_path=str(tmp_path / "restored.sqlite") if target == "disk" else None,
        )
        keywords = list(populated.vocabulary())
        original = populated.posting_blocks_for_many(keywords)
        rebuilt = restored.posting_blocks_for_many(keywords)
        for keyword in keywords:
            assert rebuilt[keyword].summaries == original[keyword].summaries
            for block_no in range(len(original[keyword].summaries)):
                block = rebuilt[keyword].decode(block_no)
                assert block == original[keyword].decode(block_no)
                assert len(block) <= BLOCK_SIZE
        restored.close()

    def test_snapshot_replaces_atomically(self, populated, tmp_path):
        path = str(tmp_path / "store.snapshot")
        populated.snapshot(path)
        first = open(path, "rb").read()
        populated.add_posting("freshly-added", ("snapshot-frag", 1), 2)
        populated.finalize()
        populated.snapshot(path)
        second = open(path, "rb").read()
        assert first != second
        assert not [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ], "temp files must not survive a successful snapshot"


# ----------------------------------------------------------------------
# backend parity: randomized fooddb workloads (property-based)
# ----------------------------------------------------------------------
@given(food_databases(), st.lists(words, min_size=1, max_size=3, unique=True),
       st.integers(min_value=1, max_value=4), st.integers(min_value=5, max_value=60),
       st.sampled_from(SHARD_COUNTS))
@RELAXED
def test_random_workload_search_parity(database, keywords, k, size_threshold, shards):
    query = _prop_query(database)
    fragments = derive_fragments(query, database)
    _, _, reference = _build_searcher(query, fragments, InMemoryStore())
    _, _, sharded = _build_searcher(query, fragments, ShardedStore(shards=shards))
    expected = _result_tuples(reference.search(keywords, k=k, size_threshold=size_threshold))
    actual = _result_tuples(sharded.search(keywords, k=k, size_threshold=size_threshold))
    assert actual == expected


@given(food_databases(), st.sampled_from(SHARD_COUNTS))
@RELAXED
def test_random_workload_incremental_parity(database, shards):
    query = _prop_query(database)
    fragments = derive_fragments(query, database)
    stores = (InMemoryStore(), ShardedStore(shards=shards))
    indexes, graphs, maintainers = [], [], []
    for store in stores:
        # each maintainer needs its own mutable database copy
        copy = Database("prop-fooddb")
        for schema_fn in (restaurant_schema, customer_schema, comment_schema):
            copy.create_relation(schema_fn())
        for name in database.relation_names:
            for record in database.relation(name):
                copy.insert(name, dict(record.as_dict()))
        local_query = _prop_query(copy)
        index = InvertedFragmentIndex.from_fragments(fragments, store=store)
        graph = FragmentGraph.build(local_query, fragment_sizes(fragments), store=store)
        indexes.append(index)
        graphs.append(graph)
        maintainers.append(IncrementalMaintainer(local_query, copy, index, graph))
    for maintainer in maintainers:
        maintainer.insert("restaurant", ("rx", "crispy burger stand", "American", 12, 4.2))
        maintainer.insert("comment", ("cx", "r0", "u0", "spicy noodle soup", "02/02"))
        maintainer.delete("comment", lambda record: record["uid"] == "u0")
    assert _index_as_dict(indexes[1]) == _index_as_dict(indexes[0])
    assert indexes[1].fragment_sizes == indexes[0].fragment_sizes
    assert graphs[1].edge_count == graphs[0].edge_count


# ----------------------------------------------------------------------
# backend parity: TPC-H workload
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_tpch_search_parity(tiny_tpch, tiny_tpch_queries, shards):
    query = tiny_tpch_queries["Q2"]
    fragments = derive_fragments(query, tiny_tpch)
    spec = QueryStringSpec((("r", "r"), ("lo", "min"), ("hi", "max")))
    _, _, reference = _build_searcher(query, fragments, InMemoryStore(), "shop.example.com/Orders", spec)
    index, _, sharded = _build_searcher(
        query, fragments, ShardedStore(shards=shards), "shop.example.com/Orders", spec
    )
    frequencies = index.document_frequencies()
    ranked = sorted(frequencies, key=lambda keyword: (-frequencies[keyword], keyword))
    keywords = ranked[:3] + ranked[len(ranked) // 2: len(ranked) // 2 + 3] + ranked[-3:]
    for keyword in keywords:
        for k, s in ((1, 100), (10, 200), (5, 1000)):
            expected = _result_tuples(reference.search([keyword], k=k, size_threshold=s))
            actual = _result_tuples(sharded.search([keyword], k=k, size_threshold=s))
            assert actual == expected


# ----------------------------------------------------------------------
# engine wiring
# ----------------------------------------------------------------------
class TestEngineStoreConfig:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_engine_sharded_matches_memory(self, fooddb, search_application, fooddb_engine, shards):
        engine = DashEngineFactory(fooddb, search_application, shards)
        for keywords in (["burger"], ["coffee", "fries"]):
            expected = _result_tuples(fooddb_engine.search(keywords, k=3, size_threshold=20))
            actual = _result_tuples(engine.search(keywords, k=3, size_threshold=20))
            assert actual == expected
        stats = engine.statistics()
        assert stats["store_backend"] == "ShardedStore"
        assert stats["store_shards"] == shards
        assert engine.index.store is engine.graph.store

    def test_engine_rejects_bad_store(self, fooddb, search_application):
        from repro.core.engine import DashEngine, DashEngineError

        with pytest.raises(DashEngineError):
            DashEngine.build(search_application, fooddb, store="bogus")


def DashEngineFactory(database, application, shards):
    from repro.core.engine import DashEngine

    return DashEngine.build(application, database, store="sharded", shards=shards)
