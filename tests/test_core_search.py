"""Tests for relevance scoring, URL formulation and the top-k search (Algorithm 1)."""

import pytest

from repro.core.engine import DashEngine
from repro.core.fragments import derive_fragments, fragment_sizes
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.scoring import DashScorer
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulationError, UrlFormulator


@pytest.fixture(scope="module")
def built(fooddb, search_query, search_spec):
    fragments = derive_fragments(search_query, fooddb)
    index = InvertedFragmentIndex.from_fragments(fragments)
    graph = FragmentGraph.build(search_query, fragment_sizes(fragments))
    formulator = UrlFormulator(search_query, search_spec, "www.example.com/Search")
    searcher = TopKSearcher(index, graph, formulator)
    return index, graph, formulator, searcher


class TestDashScorer:
    def test_relevant_fragments_for_burger(self, built):
        index, _graph, _formulator, _searcher = built
        scorer = DashScorer(index, ["burger"])
        assert set(scorer.relevant_fragments()) == {
            ("American", 10), ("American", 12), ("Thai", 10),
        }

    def test_single_fragment_score_matches_example7(self, built):
        """Example 7: TF of (American, 10) for "burger" is 2/8."""
        index, _graph, _formulator, _searcher = built
        scorer = DashScorer(index, ["burger"])
        idf = index.idf("burger")
        assert scorer.score([("American", 10)]) == pytest.approx((2 / 8) * idf)
        assert scorer.score([("Thai", 10)]) == pytest.approx((1 / 10) * idf)

    def test_merged_page_score_matches_example7(self, built):
        """The merged (American, (10, 12)) page has TF 3/25."""
        index, _graph, _formulator, _searcher = built
        scorer = DashScorer(index, ["burger"])
        merged = [("American", 10), ("American", 12)]
        assert scorer.score(merged) == pytest.approx((3 / 25) * index.idf("burger"))

    def test_expansion_never_raises_score_for_single_keyword(self, built):
        index, graph, _formulator, _searcher = built
        scorer = DashScorer(index, ["burger"])
        single = scorer.score([("American", 10)])
        expanded = scorer.score([("American", 10), ("American", 12)])
        assert expanded <= single

    def test_multi_keyword_score(self, built):
        index, _graph, _formulator, _searcher = built
        scorer = DashScorer(index, ["burger", "fries"])
        assert scorer.score([("American", 12)]) > scorer.score([("American", 10)]) * 0  # defined
        assert scorer.page_occurrences([("American", 12)]) == {"burger": 1, "fries": 1}

    def test_unknown_keywords_score_zero(self, built):
        index, _graph, _formulator, _searcher = built
        scorer = DashScorer(index, ["zzz"])
        assert scorer.relevant_fragments() == ()
        assert scorer.score([("American", 10)]) == 0.0


class TestUrlFormulator:
    def test_single_fragment(self, built):
        _index, _graph, formulator, _searcher = built
        assert formulator.url_for_fragments([("Thai", 10)]) == (
            "www.example.com/Search?c=Thai&l=10&u=10"
        )

    def test_merged_fragments_use_min_max(self, built):
        _index, _graph, formulator, _searcher = built
        url = formulator.url_for_fragments([("American", 10), ("American", 12)])
        assert url == "www.example.com/Search?c=American&l=10&u=12"

    def test_bindings_for_fragments(self, built):
        _index, _graph, formulator, _searcher = built
        bindings = formulator.bindings_for_fragments([("American", 12), ("American", 9)])
        assert bindings == {"cuisine": "American", "min": 9, "max": 12}

    def test_conflicting_equality_values_rejected(self, built):
        _index, _graph, formulator, _searcher = built
        with pytest.raises(UrlFormulationError):
            formulator.bindings_for_fragments([("American", 10), ("Thai", 10)])

    def test_empty_fragment_set_rejected(self, built):
        _index, _graph, formulator, _searcher = built
        with pytest.raises(UrlFormulationError):
            formulator.bindings_for_fragments([])

    def test_arity_mismatch_rejected(self, built):
        _index, _graph, formulator, _searcher = built
        with pytest.raises(UrlFormulationError):
            formulator.bindings_for_fragments([("American",)])

    def test_url_regenerates_exactly_the_fragments(self, fooddb, search_query, built, search_application):
        """Round trip: the URL formulated for a fragment set generates a page
        whose record count equals the fragments' total record count."""
        _index, _graph, formulator, _searcher = built
        fragments = derive_fragments(search_query, fooddb)
        chosen = [("American", 10), ("American", 12)]
        url = formulator.url_for_fragments(chosen)
        page = search_application.generate_page(fooddb, url.split("?", 1)[1])
        assert page.record_count == sum(fragments[f].record_count for f in chosen)


class TestTopKSearch:
    def test_example7_burger_search(self, built):
        """k=2, s=20, keyword "burger" returns the two URLs of Example 7."""
        _index, _graph, _formulator, searcher = built
        results = searcher.search(["burger"], k=2, size_threshold=20)
        urls = {result.url for result in results}
        assert urls == {
            "www.example.com/Search?c=American&l=10&u=12",
            "www.example.com/Search?c=Thai&l=10&u=10",
        }

    def test_results_sorted_by_score(self, built):
        _index, _graph, _formulator, searcher = built
        results = searcher.search(["burger"], k=5, size_threshold=20)
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_results(self, built):
        _index, _graph, _formulator, searcher = built
        assert len(searcher.search(["burger"], k=1, size_threshold=20)) == 1

    def test_small_threshold_returns_single_fragments(self, built):
        _index, _graph, _formulator, searcher = built
        results = searcher.search(["burger"], k=3, size_threshold=1)
        assert all(len(result.fragments) == 1 for result in results)

    def test_large_threshold_expands_to_whole_component(self, built):
        _index, _graph, _formulator, searcher = built
        results = searcher.search(["burger"], k=2, size_threshold=1000)
        # With s larger than any reachable page, pending pages keep expanding
        # until no combinable fragment remains; the American seed therefore
        # ends up covering its whole chain before it becomes a result.
        american = next(r for r in results if r.bindings["cuisine"] == "American")
        assert len(american.fragments) == 4
        assert american.size == 8 + 8 + 17 + 8
        assert american.url == "www.example.com/Search?c=American&l=9&u=18"

    def test_unknown_keyword_returns_empty(self, built):
        _index, _graph, _formulator, searcher = built
        assert searcher.search(["nonexistent"], k=5, size_threshold=100) == []

    def test_multi_keyword_search(self, built):
        _index, _graph, _formulator, searcher = built
        results = searcher.search(["coffee", "fries"], k=4, size_threshold=10)
        found = {fragment for result in results for fragment in result.fragments}
        assert ("American", 9) in found and ("American", 12) in found

    def test_invalid_parameters(self, built):
        _index, _graph, _formulator, searcher = built
        with pytest.raises(ValueError):
            searcher.search(["burger"], k=0)
        with pytest.raises(ValueError):
            searcher.search(["burger"], size_threshold=0)

    def test_statistics_populated(self, built):
        _index, _graph, _formulator, searcher = built
        searcher.search(["burger"], k=2, size_threshold=20)
        stats = searcher.last_statistics
        assert stats.seed_fragments == 3
        assert stats.results == 2
        assert stats.elapsed_seconds >= 0

    def test_result_contains_scalar_identifier_regression(self, built):
        """``x in result`` with a non-iterable x must answer False, not raise."""
        _index, _graph, _formulator, searcher = built
        result = searcher.search(["burger"], k=1, size_threshold=20)[0]
        assert 10 not in result
        assert None not in result
        assert ("American", 10) in result or ("Thai", 10) in result

    def test_results_never_repeat_fragment_combinations(self, built):
        _index, _graph, _formulator, searcher = built
        results = searcher.search(["burger"], k=10, size_threshold=5)
        combos = [result.fragments for result in results]
        assert len(combos) == len(set(combos))


class TestSearchStreamBatching:
    """``next_results``: the router's batched merge advancement API."""

    @staticmethod
    def _comparable(results):
        return [(r.url, r.score, r.fragments, r.size) for r in results]

    def test_batch_matches_sequential_next_result(self, built):
        _index, _graph, _formulator, searcher = built
        batched = searcher.stream(["burger"], 5, 20)
        sequential = searcher.stream(["burger"], 5, 20)
        batch = batched.next_results(None, 3)
        singles = []
        for _ in range(3):
            result = sequential.next_result(None)
            if result is None:
                break
            singles.append(result)
        assert self._comparable(batch) == self._comparable(singles)

    def test_batch_respects_limit(self, built):
        # size_threshold=1 keeps every dequeue a direct emission (no
        # expansion re-enqueues), so the head entry must emit within its
        # own limit and everything left behind must exceed it.
        _index, _graph, _formulator, searcher = built
        stream = searcher.stream(["burger"], 5, 1)
        head = stream.peek_entry()
        batch = stream.next_results(head, 5)
        assert len(batch) >= 1
        refreshed = stream.peek_entry()
        assert refreshed is None or refreshed > head

    def test_batch_stops_at_max_results(self, built):
        _index, _graph, _formulator, searcher = built
        stream = searcher.stream(["burger"], 5, 20)
        assert len(stream.next_results(None, 2)) == 2

    def test_empty_stream_returns_empty_batch(self, built):
        _index, _graph, _formulator, searcher = built
        stream = searcher.stream(["nonexistent"], 5, 20)
        assert stream.next_results(None, 10) == []


class TestEngineEndToEnd:
    def test_engine_search_urls_generate_relevant_pages(self, fooddb, fooddb_engine, fooddb_server):
        """The URLs Dash suggests really produce db-pages containing the keyword."""
        results = fooddb_engine.search(["burger"], k=2, size_threshold=20)
        assert results
        for result in results:
            page = fooddb_server.get(result.url)
            assert page.contains_keyword("burger")

    def test_engine_statistics(self, fooddb_engine):
        stats = fooddb_engine.statistics()
        assert stats["fragments"] == 5
        assert stats["algorithm"] == "integrated"
        assert stats["graph_edges"] == 3

    def test_engine_rejects_unknown_algorithm(self, fooddb, search_application):
        from repro.core.engine import DashEngineError

        with pytest.raises(DashEngineError):
            DashEngine.build(search_application, fooddb, algorithm="magic")

    def test_engine_analysis_path_matches_declared_query(self, fooddb, search_application):
        engine = DashEngine.build(search_application, fooddb, analyze_source=True)
        assert engine.application.query.selection_attributes == ("cuisine", "budget")
        assert engine.build_report.analyzed is not None
