"""Tests for the datasets: fooddb, the TPC-H-like generator and keyword workloads."""

import pytest

from repro.datasets.fooddb import build_fooddb
from repro.datasets.tpch import SCALES, TINY, TpchScale, build_tpch, tpch_queries, tpch_schemas
from repro.datasets.workloads import select_keyword_workloads, zipf_keyword_queries


class TestFooddb:
    def test_paper_records_present(self, fooddb):
        restaurant = fooddb.relation("restaurant")
        assert {record["name"] for record in restaurant} >= {
            "Burger Queen", "McRonald's", "Wandy's", "Thaifood", "Bangkok", "Bond's Cafe",
        }
        comment = fooddb.relation("comment")
        assert any(record["comment"] == "Thai burger" for record in comment)

    def test_integrity_is_enforced(self):
        database = build_fooddb(enforce_integrity=True)
        from repro.db.errors import IntegrityError

        with pytest.raises(IntegrityError):
            database.insert("comment", ("999", "xxx", "109", "dangling", "01/01"))


class TestTpchGenerator:
    def test_schemas_have_foreign_keys(self):
        by_name = {schema.name: schema for schema in tpch_schemas()}
        assert by_name["lineitem"].foreign_keys[0].referenced_relation == "orders"
        assert by_name["customer"].foreign_keys[0].referenced_relation == "nation"

    def test_row_counts_follow_scale(self, tiny_tpch):
        assert len(tiny_tpch.relation("customer")) == TINY.customers
        assert len(tiny_tpch.relation("orders")) == TINY.orders
        assert len(tiny_tpch.relation("lineitem")) == TINY.lineitems
        assert len(tiny_tpch.relation("region")) == TINY.regions

    def test_generation_is_deterministic(self):
        first = build_tpch(TINY, seed=7)
        second = build_tpch(TINY, seed=7)
        assert first.relation("customer").to_rows() == second.relation("customer").to_rows()

    def test_different_seeds_differ(self):
        first = build_tpch(TINY, seed=1)
        second = build_tpch(TINY, seed=2)
        assert first.relation("customer").to_rows() != second.relation("customer").to_rows()

    def test_table2_relative_sizes(self):
        """Table II: the three tiers keep a ~1 : 5 : 10 size relationship."""
        small, medium, large = SCALES["small"], SCALES["medium"], SCALES["large"]
        assert medium.lineitems == 5 * small.lineitems
        assert large.lineitems == 10 * small.lineitems
        assert large.parts == 10 * small.parts

    def test_scaled_tier(self):
        half = SCALES["small"].scaled(0.5)
        assert half.customers == SCALES["small"].customers // 2
        assert half.quantity_values == SCALES["small"].quantity_values

    def test_referential_integrity_by_construction(self, tiny_tpch):
        order_keys = {record["o_orderkey"] for record in tiny_tpch.relation("orders")}
        assert all(record["l_orderkey"] in order_keys for record in tiny_tpch.relation("lineitem"))
        customer_keys = {record["c_custkey"] for record in tiny_tpch.relation("customer")}
        assert all(record["o_custkey"] in customer_keys for record in tiny_tpch.relation("orders"))

    def test_quantity_domain_bounded(self, tiny_tpch):
        quantities = {record["l_quantity"] for record in tiny_tpch.relation("lineitem")}
        assert min(quantities) >= 1
        assert max(quantities) <= TINY.quantity_values

    def test_queries_evaluate(self, tiny_tpch, tiny_tpch_queries):
        q2 = tiny_tpch_queries["Q2"]
        result = q2.evaluate(tiny_tpch, {"r": 1, "min": 1, "max": TINY.quantity_values})
        assert len(result) == TINY.orders_per_customer * TINY.lineitems_per_order

    def test_custom_scale_instance(self):
        tier = TpchScale("custom", customers=5, orders_per_customer=2, lineitems_per_order=2, parts=10)
        database = build_tpch(tier)
        assert len(database.relation("lineitem")) == 20


class TestKeywordWorkloads:
    def test_selection_by_document_frequency(self):
        frequencies = {f"word{i}": i + 1 for i in range(100)}
        workloads = select_keyword_workloads(frequencies, group_size=5)
        assert set(workloads) == {"hot", "warm", "cold"}
        hot_df = min(frequencies[w] for w in workloads["hot"])
        cold_df = max(frequencies[w] for w in workloads["cold"])
        assert hot_df > cold_df

    def test_group_size_respected(self):
        frequencies = {f"w{i}": i for i in range(1, 400)}
        workloads = select_keyword_workloads(frequencies, group_size=30)
        assert all(len(workload) == 30 for workload in workloads.values())

    def test_small_vocabulary_clamps_group_size(self):
        workloads = select_keyword_workloads({"a": 3, "b": 2, "c": 1}, group_size=30)
        assert all(1 <= len(workload) <= 3 for workload in workloads.values())

    def test_deterministic_given_seed(self):
        frequencies = {f"w{i}": i % 17 + 1 for i in range(500)}
        first = select_keyword_workloads(frequencies, seed=5)
        second = select_keyword_workloads(frequencies, seed=5)
        assert first == second

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            select_keyword_workloads({})

    def test_workloads_from_fragment_index(self, fooddb_engine):
        workloads = select_keyword_workloads(
            fooddb_engine.index.document_frequencies(), group_size=3
        )
        hot = list(workloads["hot"])
        assert all(fooddb_engine.index.fragment_frequency(word) >= 1 for word in hot)


class TestZipfQueryWorkloads:
    FREQUENCIES = {f"word{index:03d}": 500 - index for index in range(500)}

    def test_deterministic_given_seed(self):
        first = zipf_keyword_queries(self.FREQUENCIES, count=200, seed=3)
        second = zipf_keyword_queries(self.FREQUENCIES, count=200, seed=3)
        assert first == second
        different = zipf_keyword_queries(self.FREQUENCIES, count=200, seed=4)
        assert first != different

    def test_queries_draw_from_the_vocabulary(self):
        workload = zipf_keyword_queries(self.FREQUENCIES, count=100, keywords_per_query=(1, 3))
        assert len(workload) == 100
        for query in workload:
            assert 1 <= len(query) <= 3
            assert len(set(query)) == len(query)  # distinct within one query
            assert all(keyword in self.FREQUENCIES for keyword in query)

    def test_skew_concentrates_on_hot_keywords(self):
        """Higher skew -> the hottest keyword dominates more of the stream."""
        def hottest_share(skew):
            workload = zipf_keyword_queries(
                self.FREQUENCIES, count=400, skew=skew, keywords_per_query=1, seed=9
            )
            hottest = max(self.FREQUENCIES, key=self.FREQUENCIES.get)
            return sum(1 for query in workload if query == (hottest,)) / len(workload)

        assert hottest_share(1.6) > hottest_share(0.4)

    def test_unique_queries_preserve_first_appearance_order(self):
        workload = zipf_keyword_queries(self.FREQUENCIES, count=50, keywords_per_query=1, seed=2)
        unique = workload.unique_queries()
        assert len(set(unique)) == len(unique)
        assert set(unique) == set(workload.queries)

    def test_fixed_query_length(self):
        workload = zipf_keyword_queries(self.FREQUENCIES, count=20, keywords_per_query=2)
        assert all(len(query) == 2 for query in workload)

    def test_length_clamped_to_vocabulary(self):
        workload = zipf_keyword_queries({"a": 2, "b": 1}, count=10, keywords_per_query=(2, 5))
        assert all(len(query) == 2 for query in workload)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            zipf_keyword_queries({}, count=10)
        with pytest.raises(ValueError):
            zipf_keyword_queries(self.FREQUENCIES, count=-1)
        with pytest.raises(ValueError):
            zipf_keyword_queries(self.FREQUENCIES, count=10, skew=0)
        with pytest.raises(ValueError):
            zipf_keyword_queries(self.FREQUENCIES, count=10, keywords_per_query=(3, 1))
        with pytest.raises(ValueError):
            zipf_keyword_queries(self.FREQUENCIES, count=10, keywords_per_query=0)
