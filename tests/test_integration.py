"""End-to-end integration tests: analyse → crawl → index → search → validate URLs."""

import pytest

from repro.analysis import ApplicationAnalyzer, make_servlet_source
from repro.core.crawler import IntegratedCrawler, StepwiseCrawler
from repro.core.engine import DashEngine
from repro.core.fragments import derive_fragments
from repro.core.incremental import IncrementalMaintainer
from repro.datasets.fooddb import FOODDB_SEARCH_SERVLET_SOURCE, build_fooddb
from repro.datasets.tpch import TINY, TPCH_QUERY_SQL, build_tpch
from repro.datasets.workloads import select_keyword_workloads
from repro.webapp.server import WebServer


class TestFooddbPipeline:
    """The paper's running example, front to back."""

    def test_full_pipeline_from_servlet_source(self):
        database = build_fooddb()
        analyzer = ApplicationAnalyzer(database)
        analyzed = analyzer.analyze(FOODDB_SEARCH_SERVLET_SOURCE, name="Search")
        application = analyzed.to_web_application(
            "www.example.com/Search", source=FOODDB_SEARCH_SERVLET_SOURCE
        )
        server = WebServer(database, host="www.example.com")
        server.deploy(application)

        engine = DashEngine.build(application, database, algorithm="integrated")
        results = engine.search(["burger"], k=2, size_threshold=20)
        assert {result.url for result in results} == {
            "www.example.com/Search?c=American&l=10&u=12",
            "www.example.com/Search?c=Thai&l=10&u=10",
        }
        for result in results:
            page = server.get(result.url)
            assert page.contains_keyword("burger")
            assert page.record_count > 0

    def test_stepwise_and_integrated_engines_agree(self, fooddb, search_application):
        stepwise = DashEngine.build(search_application, fooddb, algorithm="stepwise")
        integrated = DashEngine.build(search_application, fooddb, algorithm="integrated")
        for keywords in (["burger"], ["coffee"], ["fries", "thai"]):
            sw_urls = [r.url for r in stepwise.search(keywords, k=3, size_threshold=20)]
            int_urls = [r.url for r in integrated.search(keywords, k=3, size_threshold=20)]
            assert sw_urls == int_urls

    def test_engine_stays_correct_under_updates(self, search_application):
        database = build_fooddb()
        engine = DashEngine.build(search_application, database, algorithm="integrated")
        maintainer = IncrementalMaintainer(
            engine.application.query, database, engine.index, engine.graph
        )
        maintainer.insert("restaurant", ("050", "Quinoa Queen", "Vegan", 13, 4.9))
        maintainer.insert("comment", ("301", "050", "120", "quinoa burger heaven", "02/12"))
        results = engine.search(["quinoa"], k=2, size_threshold=5)
        assert results
        assert results[0].bindings["cuisine"] == "Vegan"

        server = WebServer(database, host="www.example.com")
        server.deploy(engine.application)
        page = server.get(results[0].url)
        assert page.contains_keyword("quinoa")


class TestTpchPipeline:
    """The evaluation pipeline on a tiny TPC-H instance (schema-faithful)."""

    @pytest.fixture(scope="class")
    def tpch(self):
        return build_tpch(TINY)

    @pytest.fixture(scope="class")
    def q2_engine(self, tpch):
        analyzer = ApplicationAnalyzer(tpch)
        source = make_servlet_source(
            "OrdersBrowser", [("cust", "r"), ("lo", "min"), ("hi", "max")], TPCH_QUERY_SQL["Q2"]
        )
        analyzed = analyzer.analyze(source, name="Q2")
        application = analyzed.to_web_application("shop.example.com/OrdersBrowser", source=source)
        return DashEngine.build(application, tpch, algorithm="integrated"), application, analyzed

    def test_build_statistics(self, tpch, q2_engine):
        engine, _application, _analyzed = q2_engine
        reference = derive_fragments(engine.application.query, tpch)
        assert engine.index.fragment_count == len(reference)
        assert engine.graph.fragment_count == len(reference)

    def test_search_results_verified_against_web_server(self, tpch, q2_engine):
        engine, application, _analyzed = q2_engine
        server = WebServer(tpch, host="shop.example.com")
        server.deploy(application)
        workloads = select_keyword_workloads(engine.index.document_frequencies(), group_size=5)
        for temperature in ("hot", "cold"):
            for keyword in list(workloads[temperature])[:3]:
                results = engine.search([keyword], k=3, size_threshold=50)
                for result in results:
                    page = server.get(result.url)
                    assert page.contains_keyword(keyword), (temperature, keyword, result.url)

    def test_crawlers_match_on_all_queries(self, tpch):
        from repro.db.sqlparse import parse_psj_query

        for name, sql in TPCH_QUERY_SQL.items():
            query = parse_psj_query(sql, tpch, name=name)
            stepwise = StepwiseCrawler(query, tpch).crawl()
            integrated = IntegratedCrawler(query, tpch).crawl()
            assert dict(stepwise.index.iter_items()) == dict(integrated.index.iter_items())

    def test_baseline_and_dash_agree_on_relevance(self, tpch, q2_engine):
        """Dash's suggested pages contain the keyword at least as reliably as a
        conventional page-level index built by exhaustive surfacing would."""
        engine, application, _analyzed = q2_engine
        workloads = select_keyword_workloads(engine.index.document_frequencies(), group_size=3)
        keyword = list(workloads["hot"])[0]
        results = engine.search([keyword], k=5, size_threshold=50)
        assert results
        assert all(result.score > 0 for result in results)
