"""Write-path tests: batched store mutations, the batched maintainer, the
asynchronous MaintenanceService, and the single-writer multi-process mode."""

import json
import os
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.core.engine import DashEngine
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import derive_fragments, fragment_sizes
from repro.core.incremental import (
    DeleteRecords,
    IncrementalMaintainer,
    IncrementalMaintenanceError,
    InsertRecord,
)
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.datasets.workloads import zipf_mutation_stream
from repro.serving import MaintenanceService, ServiceClosedError, ServiceStoppedError
from repro.store import (
    DiskStore,
    InMemoryStore,
    RemoveFragment,
    ShardedStore,
    StoreError,
    TouchFragment,
    coalesce_mutations,
    replace_op,
)
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec

SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
URI = "www.example.com/Search"


def store_factories(tmp_path):
    return {
        "memory": InMemoryStore,
        "sharded-2": lambda: ShardedStore(shards=2),
        "sharded-8": lambda: ShardedStore(shards=8),
        "disk": lambda: DiskStore(os.path.join(str(tmp_path), "batch.sqlite")),
    }


def store_state(store):
    """Comparable dump of the postings section (lists, sizes, registration)."""
    return (
        {
            keyword: tuple((tuple(p.document_id), p.term_frequency) for p in postings)
            for keyword, postings in store.iter_items()
        },
        dict(store.fragment_sizes()),
    )


def seed_store(store):
    store.add_posting("alpha", ("A", 1), 3)
    store.add_posting("beta", ("A", 1), 1)
    store.add_posting("alpha", ("B", 2), 2)
    store.add_posting("gamma", ("C", 3), 5)
    store.finalize()


BATCH = [
    replace_op(("A", 1), {"alpha": 1, "delta": 4}),
    RemoveFragment(("C", 3)),
    TouchFragment(("D", 4)),
    replace_op(("B", 2), {"alpha": 7}),
    replace_op(("A", 1), {"alpha": 2, "delta": 4}),  # overrides the first
]


# ----------------------------------------------------------------------
# store layer: apply_mutations
# ----------------------------------------------------------------------
class TestApplyMutations:
    @pytest.mark.parametrize("backend", ["memory", "sharded-2", "sharded-8", "disk"])
    def test_batched_equals_sequential(self, backend, tmp_path):
        batched = store_factories(tmp_path / "b")[backend]()
        sequential = InMemoryStore()
        for store in (batched, sequential):
            seed_store(store)
        applied = batched.apply_mutations(BATCH)
        assert applied == 4  # the duplicate replace coalesced away
        # reference: the per-fragment path, one op at a time
        sequential.replace_fragment(("A", 1), {"alpha": 2, "delta": 4})
        sequential.touch_fragment(("A", 1))
        sequential.remove_fragment(("C", 3))
        sequential.touch_fragment(("D", 4))
        sequential.replace_fragment(("B", 2), {"alpha": 7})
        sequential.touch_fragment(("B", 2))
        sequential.finalize()
        assert store_state(batched) == store_state(sequential)
        batched.close()

    @pytest.mark.parametrize("backend", ["memory", "sharded-8", "disk"])
    def test_batch_ticks_the_clock_once(self, backend, tmp_path):
        store = store_factories(tmp_path / "t")[backend]()
        seed_store(store)
        before = store.epoch
        store.apply_mutations(BATCH)
        assert store.epoch == before + 1
        # every touched keyword/fragment stamped with the batch epoch
        for keyword in ("alpha", "beta", "delta", "gamma"):
            assert store.keyword_epoch(keyword) == before + 1
        for identifier in (("A", 1), ("B", 2), ("C", 3), ("D", 4)):
            assert store.fragment_epoch(identifier) == before + 1
        store.close()

    def test_empty_batch_is_free(self):
        store = InMemoryStore()
        seed_store(store)
        before = store.epoch
        assert store.apply_mutations([]) == 0
        assert store.epoch == before

    def test_coalesce_semantics(self):
        ops = coalesce_mutations(
            [
                TouchFragment(("X", 1)),
                replace_op(("X", 1), {"a": 1}),
                RemoveFragment(("X", 1)),
                TouchFragment(("X", 1)),  # re-register after remove: kept
                TouchFragment(("X", 1)),  # duplicate: dropped
                replace_op(("Y", 2), {"b": 1}),
                replace_op(("Y", 2), {"b": 2}),  # last replace wins
            ]
        )
        assert [type(op).__name__ for op in ops] == [
            "RemoveFragment",
            "TouchFragment",
            "ReplaceFragment",
        ]
        assert ops[2].term_frequencies == (("b", 2),)

    def test_disk_batch_is_one_crash_safe_transaction(self, tmp_path):
        path = os.path.join(str(tmp_path), "crash.sqlite")
        store = DiskStore(path)
        seed_store(store)
        reference = store_state(store)
        epoch_before = store.epoch

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with store.write_batch():
                store.apply_mutations(BATCH)
                raise Boom()
        # the whole round rolled back: data unchanged, clock never ticked
        assert store_state(store) == reference
        assert store.epoch == epoch_before
        store.close()
        reopened = DiskStore(path, create=False)
        assert store_state(reopened) == reference
        assert reopened.epoch == epoch_before
        reopened.close()

    def test_disk_batch_epochs_survive_reopen(self, tmp_path):
        path = os.path.join(str(tmp_path), "epochs.sqlite")
        store = DiskStore(path)
        seed_store(store)
        store.apply_mutations(BATCH)
        state = store.epochs.state()
        result = store_state(store)
        store.close()
        reopened = DiskStore(path, create=False)
        assert reopened.epochs.state() == state
        assert store_state(reopened) == result
        reopened.close()


# ----------------------------------------------------------------------
# core layer: the batched maintainer
# ----------------------------------------------------------------------
def build_maintained(store=None):
    database = build_fooddb()
    query = fooddb_search_query(database)
    fragments = derive_fragments(query, database)
    index = InvertedFragmentIndex.from_fragments(fragments, store=store)
    graph = FragmentGraph.build(query, fragment_sizes(fragments), store=index.store)
    return database, query, index, graph, IncrementalMaintainer(query, database, index, graph)


def index_as_dict(index):
    return {
        keyword: tuple((tuple(p.document_id), p.term_frequency) for p in postings)
        for keyword, postings in index.iter_items()
    }


class TestBatchedMaintainer:
    @pytest.mark.parametrize("backend", ["memory", "sharded-4", "disk"])
    def test_apply_updates_matches_rebuild(self, backend, tmp_path):
        store = {
            "memory": InMemoryStore,
            "sharded-4": lambda: ShardedStore(shards=4),
            "disk": lambda: DiskStore(os.path.join(str(tmp_path), "m.sqlite")),
        }[backend]()
        database, query, index, graph, maintainer = build_maintained(store)
        stream = zipf_mutation_stream(database, "comment", 30, seed=5)
        affected = maintainer.apply_updates(list(stream))
        assert affected  # the stream touched something
        reference = InvertedFragmentIndex.from_fragments(derive_fragments(query, database))
        assert index_as_dict(index) == index_as_dict(reference)
        for identifier in index.fragment_ids():
            assert graph.keyword_count(identifier) == index.fragment_size(identifier)
        store.close()

    def test_burst_of_inserts_finalizes_once(self, monkeypatch):
        _database, _query, index, _graph, maintainer = build_maintained()
        calls = []
        original = index.finalize
        monkeypatch.setattr(
            index, "finalize", lambda: (calls.append(1), original())[1]
        )
        updates = [
            InsertRecord("comment", (f"60{i}", "001", "120", f"word{i} burger", "07/12"))
            for i in range(8)
        ]
        maintainer.apply_updates(updates)
        assert len(calls) == 1  # one finalize per applied batch, not per insert
        assert maintainer.updates_applied == 8

    def test_burst_coalesces_repeated_fragment_touches(self):
        database, query, index, _graph, maintainer = build_maintained()
        # eight comments on the same restaurant: one affected fragment
        updates = [
            InsertRecord("comment", (f"61{i}", "001", "120", f"tasty{i}", "07/12"))
            for i in range(8)
        ]
        affected = maintainer.apply_updates(updates)
        assert affected == (("American", 10),)
        assert maintainer.fragments_touched == 1
        assert index_as_dict(index) == index_as_dict(
            InvertedFragmentIndex.from_fragments(derive_fragments(query, database))
        )

    def test_batch_ticks_epoch_once_per_round(self):
        _database, _query, index, _graph, maintainer = build_maintained()
        before = index.store.epoch
        maintainer.apply_updates(
            [
                InsertRecord("comment", ("620", "001", "120", "quiet burger", "07/12")),
                InsertRecord("comment", ("621", "005", "120", "loud curry", "07/12")),
            ]
        )
        # postings batch: one tick; graph keyword-count updates: one tick per
        # node on the in-memory backend — far fewer than the seed's
        # per-posting ticks either way
        assert index.store.epoch <= before + 3

    def test_interleaved_inserts_and_deletes(self):
        database, query, index, _graph, maintainer = build_maintained()
        maintainer.apply_updates(
            [
                InsertRecord("comment", ("630", "001", "120", "fresh shake", "07/12")),
                DeleteRecords("comment", lambda record: record["cid"] == "630"),
                InsertRecord("restaurant", ("631", "Soup Stop", "Thai", 10, 4.0)),
                DeleteRecords("comment", lambda record: record["cid"] == "201"),
            ]
        )
        assert index_as_dict(index) == index_as_dict(
            InvertedFragmentIndex.from_fragments(derive_fragments(query, database))
        )

    def test_failed_update_mid_burst_keeps_index_consistent(self):
        # an insert lands in the database, then a later update of the same
        # burst blows up (a predicate that raises): the maintainer must
        # refresh what the burst already changed before re-raising, so the
        # index never silently diverges from the database
        database, query, index, _graph, maintainer = build_maintained()

        def exploding_predicate(record):
            raise RuntimeError("predicate blew up")

        with pytest.raises(RuntimeError, match="blew up"):
            maintainer.apply_updates(
                [
                    InsertRecord("comment", ("650", "001", "120", "sturdy burger", "07/12")),
                    DeleteRecords("comment", exploding_predicate),
                ]
            )
        assert index.term_frequency("sturdy", ("American", 10)) == 1
        assert index_as_dict(index) == index_as_dict(
            InvertedFragmentIndex.from_fragments(derive_fragments(query, database))
        )

    def test_rejects_non_operand_relations_before_mutating(self):
        database, _query, index, _graph, maintainer = build_maintained()
        before = index_as_dict(index)
        count = len(list(database.relation("comment")))
        with pytest.raises(IncrementalMaintenanceError):
            maintainer.apply_updates(
                [
                    InsertRecord("comment", ("640", "001", "120", "ok", "07/12")),
                    InsertRecord("unrelated", ("x",)),
                ]
            )
        # the whole burst was rejected up front: no partial application
        assert index_as_dict(index) == before
        assert len(list(database.relation("comment"))) == count


# ----------------------------------------------------------------------
# serving layer: MaintenanceService
# ----------------------------------------------------------------------
def build_engine(store="memory", shards=None, store_path=None):
    database = build_fooddb()
    application = WebApplication(
        name="Search", uri=URI, query=fooddb_search_query(database), query_string_spec=SPEC
    )
    engine = DashEngine.build(
        application,
        database,
        analyze_source=False,
        store=store,
        shards=shards,
        store_path=store_path,
    )
    return database, engine


def comparable(results):
    return tuple((r.url, round(r.score, 9), r.fragments) for r in results)


class TestMaintenanceService:
    def test_tickets_resolve_and_burst_coalesces(self):
        _database, engine = build_engine()
        service = engine.serving(
            workers=1, default_k=5, default_size_threshold=20, maintenance=True,
            maintenance_delay_seconds=0.02,
        )
        maintenance = service.maintenance
        tickets = [
            maintenance.insert(
                "comment", (f"70{i}", "001", "120", f"crispy snack{i}", "07/12")
            )
            for i in range(6)
        ]
        assert maintenance.flush(timeout=10)
        batches = {id(ticket.result(timeout=5)) for ticket in tickets}
        assert len(batches) < len(tickets)  # the burst coalesced
        statistics = maintenance.statistics()
        assert statistics["updates_applied"] == 6
        assert statistics["updates_coalesced"] >= 6 - statistics["batches_applied"]
        assert service.statistics()["maintenance"]["pending"] == 0
        service.close()

    def test_epoch_precise_invalidation(self):
        _database, engine = build_engine()
        service = engine.serving(
            workers=1, default_k=5, default_size_threshold=20, maintenance=True
        )
        untouched = service.search("coffee")  # Bond's Cafe chain
        touched = service.search("thai")
        ticket = service.maintenance.insert(
            "comment", ("710", "005", "120", "glorious thai soup", "07/12")
        )
        ticket.result(timeout=5)
        after_untouched = service.search("coffee")
        after_touched = service.search("thai")
        assert after_untouched.cached  # nothing it depends on moved
        assert not after_touched.cached  # the batch touched its fragments
        fresh = engine.searcher.search(["thai"], k=5, size_threshold=20)
        assert comparable(after_touched.results) == comparable(fresh)
        assert untouched.epoch < after_touched.epoch
        del touched
        service.close()

    def test_failed_update_resolves_ticket_and_keeps_writer_alive(self):
        _database, engine = build_engine()
        service = engine.serving(workers=1, maintenance=True)
        maintenance = service.maintenance
        bad = maintenance.insert("unrelated", ("x",))
        with pytest.raises(IncrementalMaintenanceError):
            bad.result(timeout=5)
        good = maintenance.insert(
            "comment", ("720", "001", "120", "still alive", "07/12")
        )
        assert good.result(timeout=5).updates == 1
        assert maintenance.statistics()["failed_batches"] >= 1
        service.close()

    def test_close_drains_then_rejects(self):
        _database, engine = build_engine()
        service = engine.serving(workers=1, maintenance=True)
        maintenance = service.maintenance
        ticket = maintenance.insert(
            "comment", ("730", "001", "120", "final word", "07/12")
        )
        service.close()  # closes maintenance first, draining the queue
        assert ticket.result(timeout=5).updates >= 1
        with pytest.raises(ServiceClosedError):
            maintenance.insert("comment", ("731", "001", "120", "late", "07/12"))

    def test_writer_death_fails_tickets_instead_of_hanging(self, monkeypatch):
        """Regression: an unexpected error *outside* batch application
        (coalescing/dequeue logic) used to kill the writer thread silently,
        leaving queued tickets unresolved and ``flush()`` hanging forever.
        Now the service fails every queued ticket with the error and rejects
        further work with a typed ``ServiceStoppedError``."""
        _database, engine = build_engine()
        service = engine.serving(workers=1, maintenance=True)
        maintenance = service.maintenance

        boom = RuntimeError("internal writer bug")

        def dying_collect():
            # A faithful stand-in for a bug in the coalescing/dequeue
            # logic: the error fires with the ticket still queued.
            with maintenance._condition:
                while not maintenance._pending and not maintenance._closed:
                    maintenance._condition.wait()
            raise boom

        monkeypatch.setattr(maintenance, "_collect_batch", dying_collect)
        # The writer may still be parked inside the *real* _collect_batch;
        # push one sacrificial update through so its next loop iteration
        # picks up the dying replacement.
        sacrificial = maintenance.insert(
            "comment", ("739", "001", "120", "sacrificial", "07/12")
        )
        assert sacrificial.result(timeout=5).updates >= 1
        ticket = maintenance.insert(
            "comment", ("740", "001", "120", "doomed", "07/12")
        )
        # The queued ticket resolves with the internal error, never hangs.
        with pytest.raises(RuntimeError, match="internal writer bug"):
            ticket.result(timeout=5)
        # flush() raises instead of waiting on work nobody will apply.
        with pytest.raises(ServiceStoppedError) as excinfo:
            maintenance.flush(timeout=5)
        assert excinfo.value.cause is boom
        # New submissions are rejected with the stopped error, not queued.
        with pytest.raises(ServiceStoppedError):
            maintenance.insert("comment", ("741", "001", "120", "late", "07/12"))
        assert maintenance.statistics()["stopped"]
        monkeypatch.undo()
        service.close()


# ----------------------------------------------------------------------
# read-while-write consistency (memory / sharded / disk)
# ----------------------------------------------------------------------
PROBES = ("burger", "thai", "coffee")


def oracle_states(updates, k=5, size_threshold=20):
    """Probe results after every update prefix (batch boundaries are
    prefixes of the submission order, so any applied batch lands on one)."""
    database, engine = build_engine()
    maintainer = IncrementalMaintainer(
        engine.application.query, database, engine.index, engine.graph
    )
    states = {probe: set() for probe in PROBES}

    def snapshot():
        for probe in PROBES:
            states[probe].add(
                comparable(engine.searcher.search([probe], k=k, size_threshold=size_threshold))
            )

    snapshot()
    for update in updates:
        maintainer.apply_updates([update])
        snapshot()
    final = {
        probe: comparable(engine.searcher.search([probe], k=k, size_threshold=size_threshold))
        for probe in PROBES
    }
    return states, final


class TestReadWhileWriteConsistency:
    @pytest.mark.parametrize("backend", ["memory", "sharded-4", "disk"])
    def test_concurrent_searches_observe_only_batch_boundaries(self, backend, tmp_path):
        seed_database = build_fooddb()
        updates = list(zipf_mutation_stream(seed_database, "comment", 18, seed=11))
        states, final = oracle_states(updates)

        if backend == "disk":
            _database, engine = build_engine(
                store="disk", store_path=os.path.join(str(tmp_path), "rw.sqlite")
            )
        elif backend == "sharded-4":
            _database, engine = build_engine(store="sharded", shards=4)
        else:
            _database, engine = build_engine()
        service = engine.serving(
            workers=2, default_k=5, default_size_threshold=20, maintenance=True,
            maintenance_batch=4, maintenance_delay_seconds=0.002,
        )
        maintenance = service.maintenance
        violations = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                for probe in PROBES:
                    observed = comparable(service.search(probe).results)
                    if observed not in states[probe]:
                        violations.append((probe, observed))
                        return

        readers = [threading.Thread(target=hammer) for _ in range(2)]
        for reader in readers:
            reader.start()
        for update in updates:
            maintenance.submit(update)
            time.sleep(0.002)  # spread the stream over several batches
        assert maintenance.flush(timeout=30)
        stop.set()
        for reader in readers:
            reader.join()
        assert not violations, violations[:3]
        assert maintenance.statistics()["batches_applied"] >= 2
        for probe in PROBES:
            assert comparable(service.search(probe).results) == final[probe]
        # search_many during a final batch: same guarantee
        ticket = maintenance.insert(
            "comment", ("740", "001", "120", "closing burger", "07/12")
        )
        batch_results = service.search_many([[probe] for probe in PROBES])
        ticket.result(timeout=5)
        for probe, served in zip(PROBES, batch_results):
            fresh_before = states[probe]
            post = comparable(engine.searcher.search([probe], k=5, size_threshold=20))
            assert comparable(served.results) in fresh_before | {post}
        service.close()


# ----------------------------------------------------------------------
# single-writer / multi-reader DiskStore
# ----------------------------------------------------------------------
READER_SCRIPT = r"""
import json, os, sys, time
from repro.core.engine import DashEngine
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec

path, iterations = sys.argv[1], int(sys.argv[2])
database = build_fooddb()
application = WebApplication(
    name="Search", uri="www.example.com/Search",
    query=fooddb_search_query(database),
    query_string_spec=QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max"))),
)
engine = DashEngine.open(path, application, database, analyze_source=False, read_only=True)
service = engine.serving(workers=1, default_k=5, default_size_threshold=20,
                         strict_freshness=True)
probes = ("burger", "thai", "coffee")
for _ in range(iterations):
    for probe in probes:
        served = service.search(probe)
        observed = [[r.url, round(r.score, 9), list(map(list, r.fragments))]
                    for r in served.results]
        print(json.dumps({"probe": probe, "results": observed}), flush=True)
    time.sleep(0.01)
service.close()
engine.store.close()
"""


class TestSingleWriterMultiProcess:
    def test_second_exclusive_writer_is_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), "lock.sqlite")
        writer = DiskStore(path, exclusive_writer=True)
        with pytest.raises(StoreError, match="owns writes"):
            DiskStore(path, exclusive_writer=True)
        writer.close()  # releasing the lock frees the role
        successor = DiskStore(path, exclusive_writer=True)
        successor.close()

    def test_read_only_store_rejects_writes_and_refreshes_epochs(self, tmp_path):
        path = os.path.join(str(tmp_path), "ro.sqlite")
        writer = DiskStore(path, exclusive_writer=True)
        seed_store(writer)
        reader = DiskStore(path, read_only=True)
        assert [p.term_frequency for p in reader.postings("alpha")] == [3, 2]
        with pytest.raises(StoreError, match="read-only"):
            reader.add_posting("x", ("A", 1), 1)
        with pytest.raises(StoreError, match="read-only"):
            reader.apply_mutations([TouchFragment(("Z", 9))])
        # writer commits a batch; the reader sees it only as one atomic step
        writer.apply_mutations(BATCH)
        assert reader.refresh_epochs() is True
        assert reader.refresh_epochs() is False  # second sync is a no-op
        assert reader.epoch == writer.epoch
        assert store_state(reader) == store_state(writer)
        reader.close()
        writer.close()

    def test_reader_inherits_sweep_floor(self, tmp_path):
        path = os.path.join(str(tmp_path), "floor.sqlite")
        writer = DiskStore(path, exclusive_writer=True)
        seed_store(writer)
        reader = DiskStore(path, read_only=True)
        reader.refresh_epochs()
        writer.remove_fragment(("C", 3))  # leaves a tombstone
        bound = writer.epoch
        writer.sweep_epochs(bound)
        assert reader.refresh_epochs() is True
        # the pruned tombstone answers the floor, so anything the reader
        # stamped before the sweep keeps failing revalidation
        assert reader.epochs.floor == bound
        assert reader.fragment_epoch(("C", 3)) == bound
        reader.close()
        writer.close()

    def test_open_read_only_requires_existing_store(self, tmp_path):
        with pytest.raises(StoreError):
            DiskStore(os.path.join(str(tmp_path), "absent.sqlite"), read_only=True)

    def test_two_process_reader_observes_only_batch_boundaries(self, tmp_path):
        path = os.path.join(str(tmp_path), "two-proc.sqlite")
        seed_database = build_fooddb()
        updates = list(zipf_mutation_stream(seed_database, "comment", 12, seed=13))
        states, final = oracle_states(updates)
        _database, engine = build_engine(store="disk", store_path=path)

        environment = dict(os.environ)
        source_root = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        environment["PYTHONPATH"] = source_root + os.pathsep + environment.get("PYTHONPATH", "")
        reader = subprocess.Popen(
            [sys.executable, "-c", READER_SCRIPT, path, "12"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=environment,
            text=True,
        )
        try:
            maintainer = IncrementalMaintainer(
                engine.application.query, engine.database, engine.index, engine.graph
            )
            for start in range(0, len(updates), 3):
                maintainer.apply_updates(updates[start : start + 3])
                time.sleep(0.03)
            stdout, stderr = reader.communicate(timeout=60)
        finally:
            if reader.poll() is None:
                reader.kill()
                reader.communicate()
        assert reader.returncode == 0, stderr
        observations = [json.loads(line) for line in stdout.splitlines() if line.strip()]
        assert observations, stderr
        for observation in observations:
            probe = observation["probe"]
            observed = tuple(
                (url, score, tuple(tuple(f) for f in fragments))
                for url, score, fragments in observation["results"]
            )
            assert observed in states[probe], (probe, observed)
        # and the writer's final state matches the lock-step oracle
        for probe in PROBES:
            assert (
                comparable(engine.searcher.search([probe], k=5, size_threshold=20))
                == final[probe]
            )
        engine.store.close()
