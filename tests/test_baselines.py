"""Tests for the baseline approaches the paper positions Dash against."""

import pytest

from repro.baselines import (
    MaterializedPageSearch,
    RelationalKeywordSearch,
    SingleRelationSearch,
    SurfacingCrawler,
)
from repro.webapp.rendering import page_signature
from repro.webapp.server import WebServer


class TestMaterializedPageSearch:
    @pytest.fixture(scope="class")
    def built(self, fooddb, search_application):
        baseline = MaterializedPageSearch(search_application, fooddb)
        baseline.build()
        return baseline

    def test_generates_non_empty_pages_only(self, built):
        assert built.report.pages_generated > 0
        assert all(page.record_count > 0 for page in built.pages.values())

    def test_search_returns_overlapping_pages(self, built):
        """Section I: P1 and P2 overlap and both get returned for "burger"."""
        results = built.search(["burger"], k=10)
        assert len(results) >= 2
        assert built.redundancy_of_results(results) > 0.0

    def test_search_before_build_rejected(self, fooddb, search_application):
        with pytest.raises(RuntimeError):
            MaterializedPageSearch(search_application, fooddb).search(["x"])

    def test_max_pages_cap(self, fooddb, search_application):
        capped = MaterializedPageSearch(search_application, fooddb)
        report = capped.build(max_pages=3)
        assert report.pages_generated <= 3

    def test_index_larger_than_fragment_index(self, built, fooddb_engine):
        """The motivation for fragments: indexing every overlapping db-page
        costs far more postings than indexing disjoint fragments."""
        assert built.report.total_page_keywords > sum(
            fooddb_engine.index.fragment_sizes.values()
        )
        assert built.index.approximate_bytes() > fooddb_engine.index.approximate_bytes()


class TestRelationalKeywordSearch:
    def test_matching_records(self, fooddb):
        baseline = RelationalKeywordSearch(fooddb)
        matches = baseline.matching_records("comment", ["burger"])
        assert {record["cid"] for record in matches} == {"201", "202", "205"}

    def test_search_returns_joined_records(self, fooddb):
        baseline = RelationalKeywordSearch(fooddb)
        results = baseline.search(["burger"])
        assert len(results) == 4  # records 001, 201, 202, 205 (paper Section II)
        texts = [result.text() for result in results]
        assert any("Burger Queen" in text for text in texts)

    def test_results_expose_surrogate_keys(self, fooddb):
        """The defect the paper points out: raw keys show up in results."""
        baseline = RelationalKeywordSearch(fooddb)
        result = baseline.search(["burger"])[0]
        assert any(name.endswith(".rid") or name.endswith(".uid") for name, _v in result.values)

    def test_results_ranked_by_score(self, fooddb):
        baseline = RelationalKeywordSearch(fooddb)
        results = baseline.search(["burger", "fries"])
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_truncates(self, fooddb):
        baseline = RelationalKeywordSearch(fooddb)
        assert len(baseline.search(["burger"], k=2)) == 2


class TestSingleRelationSearch:
    @pytest.fixture(scope="class")
    def built(self, fooddb, search_query):
        baseline = SingleRelationSearch(search_query, fooddb)
        baseline.build()
        return baseline

    def test_derived_relation_size(self, built):
        assert built.record_count() == 8  # the joined result of Figure 5

    def test_search_returns_individual_records_not_pages(self, built):
        results = built.search(["burger"], k=10)
        assert results
        # each result is one derived record; Wandy's two comments stay separate
        wandys = [record for record, _score in results if record["name"] == "Wandy's"]
        assert len(wandys) >= 1
        assert all(record.schema.has_attribute("uname") for record, _score in results)

    def test_search_before_build_rejected(self, fooddb, search_query):
        with pytest.raises(RuntimeError):
            SingleRelationSearch(search_query, fooddb).search(["x"])


class TestSurfacingCrawler:
    def _fresh_server(self, fooddb, search_application):
        server = WebServer(fooddb, host="www.example.com")
        server.deploy(search_application)
        return server

    def test_crawl_with_true_domains_discovers_pages(self, fooddb, search_application):
        server = self._fresh_server(fooddb, search_application)
        crawler = SurfacingCrawler(server, search_application)
        report = crawler.crawl_with_values(
            {"c": ["American", "Thai"], "l": [9, 10, 12, 18], "u": [9, 10, 12, 18]}
        )
        assert report.trial_query_strings == 2 * 4 * 4
        assert report.application_invocations == report.trial_query_strings
        assert report.indexed_pages > 0
        assert report.empty_pages > 0        # l > u trials generate empty pages
        assert report.duplicate_pages > 0    # different ranges, identical contents

    def test_crawl_with_bad_guesses_finds_little(self, fooddb, search_application):
        server = self._fresh_server(fooddb, search_application)
        crawler = SurfacingCrawler(server, search_application)
        report = crawler.crawl_with_values({"c": ["French"], "l": [1], "u": [2]})
        assert report.indexed_pages == 0
        assert report.empty_pages == 1

    def test_coverage_metric(self, fooddb, search_application):
        server = self._fresh_server(fooddb, search_application)
        crawler = SurfacingCrawler(server, search_application)
        crawler.crawl_with_values({"c": ["Thai"], "l": [10], "u": [10]})
        universe = [
            page_signature(search_application.generate_page(fooddb, qs))
            for qs in search_application.enumerate_query_strings(fooddb)
        ]
        coverage = crawler.coverage_of(universe)
        assert 0.0 < coverage < 1.0

    def test_max_trials_caps_invocations(self, fooddb, search_application):
        server = self._fresh_server(fooddb, search_application)
        crawler = SurfacingCrawler(server, search_application)
        report = crawler.crawl_with_values(
            {"c": ["American", "Thai"], "l": [9, 10, 12], "u": [9, 10, 12]}, max_trials=5
        )
        assert report.trial_query_strings == 5

    def test_missing_field_values_rejected(self, fooddb, search_application):
        server = self._fresh_server(fooddb, search_application)
        crawler = SurfacingCrawler(server, search_application)
        with pytest.raises(ValueError):
            crawler.crawl_with_values({"c": ["Thai"]})

    def test_search_over_discovered_pages(self, fooddb, search_application):
        server = self._fresh_server(fooddb, search_application)
        crawler = SurfacingCrawler(server, search_application)
        crawler.crawl_with_values({"c": ["American"], "l": [9, 10, 12, 18], "u": [9, 10, 12, 18]})
        results = crawler.search(["burger"], k=3)
        assert results
        assert all("c=American" in url for url, _score in results)
