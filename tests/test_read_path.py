"""The overhauled read path: batched reads, the DiskStore read-connection
pool, and exact score-bounded early termination.

Three guarantees are load-bearing:

* **Exactness** — the bounded searcher must return byte-identical results
  (URLs, scores, fragments, sizes) to the bound-free exhaustive searcher on
  every backend, for randomized corpora and queries (hypothesis) as well as
  the running examples.  Pruning that changes output is a correctness bug,
  not a performance trade.
* **Batched reads agree with the per-item reads** — ``postings_for_many``
  and ``fragment_sizes_for`` must answer exactly like their singular
  counterparts on every backend, before and after mutations.
* **The DiskStore pool is real and bounded** — concurrent ``search_many``
  readers return the single-threaded results, and ``close()`` closes every
  pooled connection (no file-descriptor leak).
"""

import os
import sqlite3
import tempfile
import threading
import time

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.serving import SearchService
from repro.store import DiskStore, InMemoryStore, ShardedStore
from repro.webapp.request import QueryStringSpec

QUERY = fooddb_search_query(build_fooddb())
SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
URI = "www.example.com/Search"

RELAXED = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _disk_store() -> DiskStore:
    return DiskStore(os.path.join(tempfile.mkdtemp(prefix="repro-read-path-"), "store.sqlite"))


def _build(fragments, store, early_termination=True):
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    sizes = {identifier: index.fragment_size(identifier) for identifier in fragments}
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    searcher = TopKSearcher(
        index, graph, UrlFormulator(QUERY, SPEC, URI), early_termination=early_termination
    )
    return index, graph, searcher


def _result_tuples(results):
    return [(r.url, r.score, r.fragments, r.size) for r in results]


# ----------------------------------------------------------------------
# randomized corpora + queries
# ----------------------------------------------------------------------
corpus_strategy = st.builds(
    lambda seed, count: _random_fragments(seed, count),
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=5, max_value=90),
)


def _random_fragments(seed: int, count: int):
    import random

    rng = random.Random(seed)
    vocabulary = [f"kw{index:02d}" for index in range(30)]
    fragments = {}
    groups = max(1, count // 6)
    for index in range(count):
        identifier = (f"Cuisine{index % groups:02d}", 5 + index // groups)
        fragments[identifier] = {
            rng.choice(vocabulary): rng.randint(1, 5) for _ in range(rng.randint(1, 8))
        }
    return fragments


class TestEarlyTerminationExactness:
    """Bounded and exhaustive searches must be byte-identical everywhere."""

    @RELAXED
    @given(
        fragments=corpus_strategy,
        query_seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=6),
        size_threshold=st.sampled_from([1, 10, 60]),
    )
    def test_bounded_equals_exhaustive_across_backends(
        self, fragments, query_seed, k, size_threshold
    ):
        import random

        rng = random.Random(query_seed)
        vocabulary = [f"kw{index:02d}" for index in range(30)] + ["unknown"]
        keywords = rng.sample(vocabulary, rng.randint(1, 3))

        _, _, exhaustive = _build(fragments, InMemoryStore(), early_termination=False)
        expected = _result_tuples(exhaustive.search(keywords, k=k, size_threshold=size_threshold))
        assert exhaustive.last_statistics.pruned_dequeues == 0
        assert exhaustive.last_statistics.pruned_expansions == 0

        for store_factory in (InMemoryStore, lambda: ShardedStore(shards=3), _disk_store):
            _, _, bounded = _build(fragments, store_factory(), early_termination=True)
            actual = _result_tuples(bounded.search(keywords, k=k, size_threshold=size_threshold))
            assert actual == expected

    def test_pruned_work_is_reported(self):
        """An impact-skewed query must leave whole blocks undecoded.

        The inverted list is impact-ordered, so the first block carries the
        highest per-fragment weights (sizes are aligned with occurrences
        here); with a small ``k`` the search decodes that block, pops its
        best seeds, and the remaining blocks' admissible bounds can never
        win a dequeue — they are skipped wholesale, their postings never
        decoded, let alone scored.
        """
        from repro.store.blocks import BLOCK_SIZE

        count = 2 * BLOCK_SIZE + 44
        fragments = {}
        for index in range(count):
            tier = 9 - (index * 9) // count  # descending impact tiers
            fragments[("Cuisine00", 5 + index)] = {"hot": 1 + tier, "filler": 3}
        _, _, bounded = _build(fragments, InMemoryStore())
        _, _, exhaustive = _build(fragments, InMemoryStore(), early_termination=False)
        keywords = ["hot"]
        bounded_results = bounded.search(keywords, k=2, size_threshold=1)
        exhaustive_results = exhaustive.search(keywords, k=2, size_threshold=1)
        assert _result_tuples(bounded_results) == _result_tuples(exhaustive_results)
        statistics = bounded.last_statistics
        assert statistics.seed_fragments == count
        assert statistics.blocks_decoded >= 1
        assert statistics.blocks_skipped >= 1
        assert statistics.postings_decoded < count
        assert statistics.pruned_dequeues > 0
        assert statistics.seeds_scored < statistics.seed_fragments
        assert statistics.seeds_scored + statistics.pruned_dequeues == statistics.seed_fragments
        totals = bounded.lifetime_statistics()
        assert totals["searches"] == 1
        assert totals["pruned_dequeues"] == statistics.pruned_dequeues
        assert totals["blocks_skipped"] == statistics.blocks_skipped
        assert totals["blocks_decoded"] == statistics.blocks_decoded
        assert totals["postings_decoded"] == statistics.postings_decoded
        assert totals["pruned_expansions"] == statistics.pruned_expansions

    def test_expansion_tier_pruning_is_reported(self):
        """Irrelevant neighbours are skipped once a relevant candidate exists."""
        fragments = _random_fragments(seed=3, count=90)
        _, _, bounded = _build(fragments, InMemoryStore())
        _, _, exhaustive = _build(fragments, InMemoryStore(), early_termination=False)
        keywords = ["kw00", "kw01", "kw02"]
        bounded_results = bounded.search(keywords, k=2, size_threshold=10)
        exhaustive_results = exhaustive.search(keywords, k=2, size_threshold=10)
        assert _result_tuples(bounded_results) == _result_tuples(exhaustive_results)
        assert bounded.last_statistics.pruned_expansions > 0

    def test_dequeue_and_expansion_counts_are_backend_independent(self):
        fragments = _random_fragments(seed=9, count=60)
        _, _, reference = _build(fragments, InMemoryStore())
        reference.search(["kw03", "kw07"], k=4, size_threshold=20)
        for store_factory in (lambda: ShardedStore(shards=4), _disk_store):
            _, _, other = _build(fragments, store_factory())
            other.search(["kw03", "kw07"], k=4, size_threshold=20)
            assert other.last_statistics.dequeues == reference.last_statistics.dequeues
            assert other.last_statistics.expansions == reference.last_statistics.expansions
            assert other.last_statistics.seeds_scored == reference.last_statistics.seeds_scored


# ----------------------------------------------------------------------
# the precomputed bound building blocks
# ----------------------------------------------------------------------
class TestAdmissibleBounds:
    """The scoring layer's precomputed bounds must never under-cap a score."""

    @RELAXED
    @given(fragments=corpus_strategy, query_seed=st.integers(min_value=0, max_value=10_000))
    def test_sorted_lists_and_seed_bounds_are_admissible(self, fragments, query_seed):
        import random

        from repro.core.scoring import DashScorer

        rng = random.Random(query_seed)
        vocabulary = [f"kw{index:02d}" for index in range(30)] + ["unknown"]
        keywords = rng.sample(vocabulary, rng.randint(1, 3))
        index, _, _ = _build(fragments, InMemoryStore())
        scorer = DashScorer(index, keywords)

        for keyword in keywords:
            postings = index.postings(keyword)
            if postings:
                # the per-keyword occurrence ceiling is the head of the
                # descending-sorted list — the invariant the bound math rides
                assert postings[0].term_frequency == max(
                    p.term_frequency for p in postings
                )

        bounds = scorer.seed_score_bounds()
        for identifier in bounds:
            assert bounds[identifier] >= scorer.score((identifier,))
class TestBatchedReads:
    @pytest.mark.parametrize(
        "store_factory", [InMemoryStore, lambda: ShardedStore(shards=3), _disk_store]
    )
    def test_postings_for_many_matches_postings(self, store_factory):
        fragments = _random_fragments(seed=5, count=40)
        index, _, _ = _build(fragments, store_factory())
        store = index.store
        keywords = list(store.vocabulary())[:10] + ["missing", "missing"]
        batched = store.postings_for_many(keywords)
        assert set(batched) == set(keywords)
        for keyword in batched:
            assert batched[keyword] == store.postings(keyword)

    @pytest.mark.parametrize(
        "store_factory", [InMemoryStore, lambda: ShardedStore(shards=3), _disk_store]
    )
    def test_postings_for_many_sees_mutations(self, store_factory):
        fragments = _random_fragments(seed=6, count=30)
        index, _, _ = _build(fragments, store_factory())
        store = index.store
        keyword = next(iter(store.vocabulary()))
        before = store.postings_for_many([keyword])[keyword]
        assert before  # the vocabulary keyword has postings
        victim = before[0].document_id
        index.replace_fragment(victim, {keyword: 999})
        after = store.postings_for_many([keyword])[keyword]
        assert after == store.postings(keyword)
        assert after[0].term_frequency == 999

    @pytest.mark.parametrize(
        "store_factory", [InMemoryStore, lambda: ShardedStore(shards=3), _disk_store]
    )
    def test_fragment_sizes_for_matches_fragment_size(self, store_factory):
        fragments = _random_fragments(seed=7, count=40)
        index, _, _ = _build(fragments, store_factory())
        store = index.store
        identifiers = list(store.fragment_ids())[:15] + [("Nope", 1)]
        batched = store.fragment_sizes_for(identifiers)
        for identifier in identifiers:
            assert batched[identifier] == store.fragment_size(identifier)
        assert batched[("Nope", 1)] == 0

    def test_disk_size_cache_invalidates_on_replace(self):
        fragments = _random_fragments(seed=8, count=20)
        index, _, _ = _build(fragments, _disk_store())
        store = index.store
        identifier = store.fragment_ids()[0]
        original = store.fragment_sizes_for([identifier])[identifier]
        assert original == store.fragment_size(identifier)
        index.replace_fragment(identifier, {"kw00": original + 17})
        assert store.fragment_sizes_for([identifier])[identifier] == original + 17
        assert store.fragment_size(identifier) == original + 17

    def test_disk_batched_reads_see_staged_bulk_load(self):
        """Before finalize() commits, reads must route through the write
        connection and see the staged rows."""
        store = _disk_store()
        index = InvertedFragmentIndex(store=store)
        index.add_fragment(("American", 10), {"burger": 2, "fries": 1})
        # finalize() not called: the bulk-load transaction is still open
        assert store.fragment_sizes_for([("American", 10)])[("American", 10)] == 3
        batched = store.postings_for_many(["burger", "fries"])
        assert [p.document_id for p in batched["burger"]] == [("American", 10)]
        store.close()


# ----------------------------------------------------------------------
# the DiskStore read-connection pool
# ----------------------------------------------------------------------
def _open_sqlite_fds(path):
    """File descriptors of this process pointing at ``path`` (linux)."""
    fd_dir = "/proc/self/fd"
    if not os.path.isdir(fd_dir):
        pytest.skip("/proc/self/fd not available on this platform")
    real = os.path.realpath(path)
    open_fds = []
    for entry in os.listdir(fd_dir):
        try:
            target = os.readlink(os.path.join(fd_dir, entry))
        except OSError:
            continue
        if target == real:
            open_fds.append(entry)
    return open_fds


class TestDiskReadPool:
    def test_concurrent_search_many_matches_serial_results(self):
        fragments = _random_fragments(seed=11, count=80)
        _, _, searcher = _build(fragments, _disk_store())
        store = searcher.index.store
        queries = [[f"kw{index % 30:02d}", f"kw{(index * 7) % 30:02d}"] for index in range(24)]
        expected = [
            _result_tuples(searcher.search(keywords, k=5, size_threshold=20))
            for keywords in queries
        ]
        store.drop_read_caches()  # make the concurrent pass actually read SQL
        service = SearchService(searcher, cache_size=0, workers=4)
        served = service.search_many(
            [{"keywords": keywords} for keywords in queries], k=5, size_threshold=20
        )
        assert [_result_tuples(result.results) for result in served] == expected
        service.close()
        store.close()

    def test_pool_grows_per_thread_and_closes_without_fd_leak(self):
        fragments = _random_fragments(seed=12, count=30)
        _, _, searcher = _build(fragments, _disk_store())
        store = searcher.index.store
        searcher.search(["kw01"], k=3, size_threshold=10)
        assert store.pooled_reader_count >= 1

        seen = []
        release = threading.Event()

        def reader():
            seen.append(store.fragment_count())
            # stay alive until the pool size is observed — exited threads'
            # connections are legitimately reclaimed by later connects
            release.wait(timeout=30)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30
        while len(seen) < 3 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert sorted(seen) == [30, 30, 30]
        # one pooled connection per (live) reader thread plus the main thread's
        assert store.pooled_reader_count >= 4
        release.set()
        for thread in threads:
            thread.join()

        assert len(_open_sqlite_fds(store.path)) >= 1
        store.close()
        assert store.pooled_reader_count == 0
        assert _open_sqlite_fds(store.path) == []
        store.close()  # idempotent

    def test_dead_thread_connections_are_reclaimed(self):
        """Thread churn must not leak pooled connections (EMFILE over time)."""
        fragments = _random_fragments(seed=15, count=20)
        _, _, searcher = _build(fragments, _disk_store())
        store = searcher.index.store
        store.fragment_count()  # the main thread's pooled reader

        def reader():
            store.fragment_count()

        for _round in range(5):
            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Each round's new readers swept the previous round's dead ones:
        # main + at most the last round's (dead, not-yet-swept) connections.
        assert store.pooled_reader_count <= 5
        final = threading.Thread(target=reader)
        final.start()
        final.join()
        # The final thread's connect swept every earlier dead reader.  (The
        # connection count is the leak-proof bound; per-connection fd counts
        # on the main db file vary with WAL timing, so they are asserted
        # only at close.)
        assert store.pooled_reader_count <= 2
        store.close()
        assert _open_sqlite_fds(store.path) == []

    def test_reads_after_close_raise(self):
        fragments = _random_fragments(seed=13, count=10)
        _, _, searcher = _build(fragments, _disk_store())
        store = searcher.index.store
        store.close()
        with pytest.raises(Exception):
            store.fragment_count()


# ----------------------------------------------------------------------
# ShardedStore read-pool lifecycle
# ----------------------------------------------------------------------
class TestShardedStoreLifecycle:
    def test_close_shuts_the_executor_down_and_reads_stay_correct(self):
        fragments = _random_fragments(seed=14, count=40)
        index, _, searcher = _build(fragments, ShardedStore(shards=4, parallel_threshold=1))
        store = index.store
        # force a fan-out before and after close
        before = store.fragment_sizes()
        assert store._executor is not None
        results_before = _result_tuples(searcher.search(["kw02", "kw04"], k=3, size_threshold=10))
        store.close()
        assert store._executor is None
        assert store.fragment_sizes() == before
        results_after = _result_tuples(searcher.search(["kw02", "kw04"], k=3, size_threshold=10))
        assert results_after == results_before
        store.close()  # idempotent

    def test_single_shard_store_never_builds_a_pool(self):
        store = ShardedStore(shards=1)
        assert store._executor is None
        store.close()

    def test_fan_out_racing_close_falls_back_to_serial(self):
        """A fan-out that captured the pool just before close() must not
        crash — it degrades to the serial path close() promises."""
        fragments = _random_fragments(seed=16, count=40)
        index, _, _ = _build(fragments, ShardedStore(shards=4, parallel_threshold=1))
        store = index.store
        expected = store.fragment_sizes()
        real = store._executor

        class RacingExecutor:
            """Completes close() between the pool capture and submission."""

            def map(self, fn, tasks):
                store.close()
                return real.map(fn, tasks)  # raises: the pool is shut down

            def shutdown(self, wait=True):
                real.shutdown(wait=wait)

        store._executor = RacingExecutor()
        assert store.fragment_sizes() == expected  # serial fallback, no crash
        assert store._executor is None  # close() really ran mid-flight
        store.close()  # idempotent

    def test_task_runtime_errors_propagate_through_the_pool(self):
        """Only the close() race retries serially — a task's own
        RuntimeError must surface, not silently re-execute the batch."""
        fragments = _random_fragments(seed=17, count=40)
        index, _, _ = _build(fragments, ShardedStore(shards=4, parallel_threshold=1))
        store = index.store

        def boom():
            raise RuntimeError("task failure")

        with pytest.raises(RuntimeError, match="task failure"):
            store.run_parallel([boom, boom, boom, boom])
        store.close()


# ----------------------------------------------------------------------
# block layout: directories are a pure function of store state
# ----------------------------------------------------------------------
def _assert_block_directories_match(store):
    """Every keyword's directory equals a fresh build over the current state.

    The cross-backend determinism contract: summaries (including the float
    maxima) must be byte-identical to ``build_summaries`` over the current
    sorted posting list and current sizes, and the concatenated decoded
    blocks must reproduce the posting list exactly.
    """
    from repro.store.blocks import BLOCK_SIZE, build_summaries

    keywords = list(store.vocabulary()) + ["kw-absent"]
    directories = store.posting_blocks_for_many(keywords)
    gathered = store.postings_for_many(keywords)
    snapshot = {}
    for keyword in keywords:
        handle = directories[keyword]
        postings = gathered[keyword]
        sizes = store.fragment_sizes_for(tuple({p.document_id for p in postings}))
        expected = build_summaries(postings, lambda identifier: sizes.get(identifier, 0))
        assert handle.summaries == expected
        assert handle.posting_count == len(postings)
        decoded = []
        for block_no, summary in enumerate(handle.summaries):
            block = handle.decode(block_no)
            assert len(block) == summary.count <= BLOCK_SIZE
            assert summary.max_occurrences == max(p.term_frequency for p in block)
            decoded.extend(block)
        assert tuple(decoded) == postings
        snapshot[keyword] = handle.summaries
    return snapshot


class TestBlockLayout:
    """The tentpole invariant: blocks are pure functions of (list, sizes)."""

    @RELAXED
    @given(fragments=corpus_strategy, churn_seed=st.integers(min_value=0, max_value=10_000))
    def test_directories_match_fresh_summaries_even_after_churn(self, fragments, churn_seed):
        import random

        from repro.store.mutations import RemoveFragment, replace_op

        rng = random.Random(churn_seed)
        batch = []
        for identifier in sorted(fragments):
            roll = rng.random()
            if roll < 0.15:
                batch.append(RemoveFragment(identifier))
            elif roll < 0.45:
                batch.append(
                    replace_op(
                        identifier,
                        {
                            f"kw{rng.randrange(30):02d}": rng.randint(1, 5)
                            for _ in range(rng.randint(1, 4))
                        },
                    )
                )

        per_backend = []
        for store_factory in (InMemoryStore, lambda: ShardedStore(shards=3), _disk_store):
            store = store_factory()
            index = InvertedFragmentIndex(store=store)
            for identifier, term_frequencies in fragments.items():
                index.add_fragment(identifier, term_frequencies)
            index.finalize()
            _assert_block_directories_match(store)
            if batch:
                store.apply_mutations(batch)
            per_backend.append(_assert_block_directories_match(store))
            store.close()
        # the same logical state yields bit-identical directories everywhere
        assert per_backend[0] == per_backend[1] == per_backend[2]

    def test_incremental_writes_refresh_directories(self):
        """add_posting / remove_fragment invalidate cached directories."""
        for store_factory in (InMemoryStore, lambda: ShardedStore(shards=2), _disk_store):
            store = store_factory()
            store.add_posting("alpha", ("A", 1), 3)
            store.add_posting("alpha", ("B", 2), 2)
            store.finalize()
            _assert_block_directories_match(store)
            # growing B's size through another keyword stales alpha's maxima
            store.add_posting("beta", ("B", 2), 9)
            store.finalize()
            _assert_block_directories_match(store)
            store.remove_fragment(("A", 1))
            store.finalize()
            _assert_block_directories_match(store)
            store.close()


# ----------------------------------------------------------------------
# the delta+varint block codec
# ----------------------------------------------------------------------
class TestBlockCodec:
    @RELAXED
    @given(values=st.lists(st.integers(min_value=0, max_value=2**40), max_size=30))
    def test_uvarint_round_trip(self, values):
        from repro.store.blocks import decode_uvarint, encode_uvarint

        out = bytearray()
        for value in values:
            encode_uvarint(value, out)
        blob = bytes(out)
        position = 0
        decoded = []
        for _ in values:
            value, position = decode_uvarint(blob, position)
            decoded.append(value)
        assert decoded == values
        assert position == len(blob)

    def test_uvarint_rejects_negative_and_truncated(self):
        from repro.store.blocks import decode_uvarint, encode_uvarint

        with pytest.raises(ValueError):
            encode_uvarint(-1, bytearray())
        with pytest.raises(ValueError, match="truncated"):
            decode_uvarint(b"\x80", 0)
        with pytest.raises(ValueError, match="truncated"):
            decode_uvarint(b"", 0)

    @RELAXED
    @given(
        entries=st.lists(
            st.tuples(
                st.text(max_size=8),
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=40,
        )
    )
    def test_block_round_trip(self, entries):
        from repro.store.blocks import decode_block, encode_block
        from repro.store.disk import decode_identifier, encode_identifier
        from repro.text.inverted_index import Posting

        postings = tuple(
            Posting((name, index), occurrences)
            for name, index, occurrences in sorted(entries, key=lambda entry: -entry[2])
        )
        blob = encode_block(postings, encode_identifier)
        assert decode_block(blob, decode_identifier) == postings

    def test_encode_block_rejects_ascending_occurrences(self):
        from repro.store.blocks import encode_block
        from repro.store.disk import encode_identifier
        from repro.text.inverted_index import Posting

        postings = (Posting(("A", 1), 1), Posting(("B", 2), 5))
        with pytest.raises(ValueError, match="occurrence-descending"):
            encode_block(postings, encode_identifier)

    @RELAXED
    @given(data=st.binary(max_size=60))
    def test_decode_block_never_crashes_on_garbage(self, data):
        """Corrupt BLOBs raise ValueError — never hang, never crash."""
        from repro.store.blocks import decode_block
        from repro.store.disk import decode_identifier

        try:
            decode_block(data, decode_identifier)
        except ValueError:
            pass

    @RELAXED
    @given(
        pairs=st.lists(
            st.tuples(st.text(min_size=1, max_size=10), st.integers(min_value=0, max_value=500)),
            max_size=20,
        )
    )
    def test_fragment_terms_round_trip_keeps_the_maximum(self, pairs):
        from repro.store.disk import decode_fragment_terms, encode_fragment_terms

        blob = encode_fragment_terms(pairs)
        assert decode_fragment_terms(blob) == pairs
        # appending more pairs (the add_posting path) decodes to the
        # concatenation — the blob format carries no count header
        blob2 = blob + encode_fragment_terms([("extra", 7)])
        assert decode_fragment_terms(blob2) == pairs + [("extra", 7)]
        with pytest.raises(ValueError):
            decode_fragment_terms(blob + b"\x85")


# ----------------------------------------------------------------------
# schema v1 -> v2 migration
# ----------------------------------------------------------------------
_V1_DDL = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE fragments (id TEXT PRIMARY KEY, size INTEGER NOT NULL);
CREATE TABLE postings (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    keyword     TEXT NOT NULL,
    fragment    TEXT NOT NULL,
    tie         TEXT NOT NULL,
    occurrences INTEGER NOT NULL
);
CREATE INDEX postings_by_keyword ON postings (keyword, occurrences DESC, tie);
CREATE INDEX postings_by_fragment ON postings (fragment);
CREATE TABLE nodes (id TEXT PRIMARY KEY, keyword_count INTEGER NOT NULL);
CREATE TABLE edges (src TEXT NOT NULL, dst TEXT NOT NULL, PRIMARY KEY (src, dst)) WITHOUT ROWID;
CREATE TABLE keyword_epochs (keyword TEXT PRIMARY KEY, epoch INTEGER NOT NULL);
CREATE TABLE fragment_epochs (fragment TEXT PRIMARY KEY, epoch INTEGER NOT NULL);
"""


def _build_v1_file(fragments) -> str:
    """A schema-v1 store file exactly as a PR 5 writer would have left it."""
    from repro.store.disk import encode_identifier
    from repro.store.memory import posting_sort_key

    reference = InMemoryStore()
    index = InvertedFragmentIndex(store=reference)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()

    path = os.path.join(tempfile.mkdtemp(prefix="repro-v1-migration-"), "store.sqlite")
    connection = sqlite3.connect(path)
    connection.executescript(_V1_DDL)
    connection.executemany(
        "INSERT INTO fragments (id, size) VALUES (?, ?)",
        [
            (encode_identifier(identifier), size)
            for identifier, size in reference.fragment_sizes().items()
        ],
    )
    for keyword, postings in reference.iter_items():
        connection.executemany(
            "INSERT INTO postings (keyword, fragment, tie, occurrences) VALUES (?, ?, ?, ?)",
            [
                (
                    keyword,
                    encode_identifier(posting.document_id),
                    posting_sort_key(posting)[1],
                    posting.term_frequency,
                )
                for posting in postings
            ],
        )
    connection.execute("INSERT INTO meta (key, value) VALUES ('epoch', '0')")
    connection.execute("INSERT INTO meta (key, value) VALUES ('sweep_bound', '0')")
    connection.execute("PRAGMA user_version = 1")
    connection.commit()
    connection.close()
    return path


class TestDiskSchemaMigration:
    def test_v1_file_migrates_and_serves_identical_results(self):
        fragments = _random_fragments(seed=21, count=60)
        path = _build_v1_file(fragments)
        _, _, expected_searcher = _build(fragments, InMemoryStore())
        queries = [(["kw00"], 3, 10), (["kw03", "kw07"], 4, 20), (["kw12", "unknown"], 2, 15)]
        expected = [
            _result_tuples(expected_searcher.search(kws, k=k, size_threshold=s))
            for kws, k, s in queries
        ]

        migrated = DiskStore(path, create=False)
        try:
            assert migrated._connection.execute("PRAGMA user_version").fetchone()[0] == 2
            tables = {
                name
                for (name,) in migrated._connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            assert "postings" not in tables
            assert "posting_blocks" in tables
            block_rows = migrated._connection.execute(
                "SELECT COUNT(*) FROM posting_blocks"
            ).fetchone()[0]
            assert block_rows > 0
            _assert_block_directories_match(migrated)
            # attach to the already-populated store: no re-indexing
            index = InvertedFragmentIndex(store=migrated)
            graph = FragmentGraph.build(QUERY, migrated.fragment_sizes(), store=migrated)
            searcher = TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))
            actual = [
                _result_tuples(searcher.search(kws, k=k, size_threshold=s))
                for kws, k, s in queries
            ]
            assert actual == expected
            assert migrated.refresh_epochs() in (True, False)
        finally:
            migrated.close()

        # durable: a second open finds v2 and does not re-migrate
        reopened = DiskStore(path, create=False)
        try:
            assert reopened._connection.execute("PRAGMA user_version").fetchone()[0] == 2
            assert reopened.postings("kw00")
        finally:
            reopened.close()

    def test_read_only_open_of_v1_file_raises(self):
        from repro.store import StoreError

        path = _build_v1_file(_random_fragments(seed=22, count=10))
        with pytest.raises(StoreError, match="migrate"):
            DiskStore(path, create=False, read_only=True)

    def test_migrated_file_supports_writer_and_reader_roles(self):
        fragments = _random_fragments(seed=23, count=20)
        path = _build_v1_file(fragments)
        writer = DiskStore(path, create=False, exclusive_writer=True)
        try:
            writer.add_posting("kw99", ("Fresh", 1), 4)
            writer.finalize()
            assert ("Fresh", 1) in {p.document_id for p in writer.postings("kw99")}
            _assert_block_directories_match(writer)
            reader = DiskStore(path, create=False, read_only=True)
            try:
                assert reader.postings("kw99")
                assert reader.refresh_epochs() in (True, False)
            finally:
                reader.close()
        finally:
            writer.close()

    def test_interrupted_migration_redoes_cleanly(self):
        """A crash mid-migration leaves user_version at 1; reopening redoes
        the (idempotent) migration from scratch."""
        fragments = _random_fragments(seed=24, count=15)
        path = _build_v1_file(fragments)
        store = DiskStore(path, create=False)
        store.close()
        # simulate the crash: blocks built but the version bump lost
        connection = sqlite3.connect(path)
        connection.executescript(_V1_DDL.replace("CREATE TABLE", "CREATE TABLE IF NOT EXISTS")
                                 .replace("CREATE INDEX", "CREATE INDEX IF NOT EXISTS"))
        connection.execute("DELETE FROM postings")
        for keyword, postings in InMemoryStore().iter_items():
            pass  # no-op: postings table intentionally left empty
        connection.execute("PRAGMA user_version = 1")
        connection.commit()
        connection.close()
        redone = DiskStore(path, create=False)
        try:
            assert redone._connection.execute("PRAGMA user_version").fetchone()[0] == 2
            # the redo rebuilt blocks from the (now empty) v1 table
            assert redone.vocabulary() == ()
        finally:
            redone.close()
