"""Ablation: db-page fragments vs materialising every db-page.

Section IV argues that materialising and indexing every db-page is infeasible
because page contents overlap massively and overlapping pages pollute search
results.  This ablation quantifies the claim on the running example and on a
small TPC-H slice: it compares

* total indexed keyword occurrences (postings volume),
* approximate index size in bytes, and
* the redundancy of the top-10 result list for a hot keyword

between the materialize-everything baseline and Dash's fragment index.
"""

import pytest

from repro.analysis import make_servlet_source
from repro.baselines import MaterializedPageSearch
from repro.bench.reporting import print_table
from repro.core.engine import DashEngine
from repro.datasets.fooddb import FOODDB_SEARCH_SERVLET_SOURCE, build_fooddb
from repro.datasets.tpch import TPCH_QUERY_SQL, TpchScale, build_tpch
from repro.analysis.analyzer import ApplicationAnalyzer


def _fooddb_setup():
    database = build_fooddb()
    analyzed = ApplicationAnalyzer(database).analyze(FOODDB_SEARCH_SERVLET_SOURCE, name="Search")
    application = analyzed.to_web_application("www.example.com/Search",
                                              source=FOODDB_SEARCH_SERVLET_SOURCE)
    return database, application


def test_ablation_fragments_vs_pages_fooddb(benchmark):
    database, application = _fooddb_setup()

    def build_both():
        baseline = MaterializedPageSearch(application, database)
        baseline.build()
        engine = DashEngine.build(application, database, algorithm="integrated")
        return baseline, engine

    baseline, engine = benchmark.pedantic(build_both, rounds=1, iterations=1)

    fragment_keywords = sum(engine.index.fragment_sizes.values())
    rows = [
        ("materialized db-pages", baseline.report.pages_generated,
         baseline.report.total_page_keywords, baseline.index.approximate_bytes()),
        ("Dash fragments", engine.index.fragment_count,
         fragment_keywords, engine.index.approximate_bytes()),
    ]
    print_table(
        ["approach", "indexed units", "indexed keyword occurrences", "approx index bytes"],
        rows,
        title="Ablation (fooddb): fragments vs materialised pages",
    )

    results = baseline.search(["burger"], k=10)
    redundancy = baseline.redundancy_of_results(results)
    dash_results = engine.search(["burger"], k=10, size_threshold=20)
    dash_combos = [result.fragments for result in dash_results]
    benchmark.extra_info.update(
        {"page_redundancy": round(redundancy, 2), "dash_results": len(dash_results)}
    )
    print_table(
        ["approach", "results for 'burger'", "redundant results"],
        [
            ("materialized db-pages", len(results), round(redundancy * len(results))),
            ("Dash fragments", len(dash_results), len(dash_combos) - len(set(dash_combos))),
        ],
        title="Result redundancy for keyword 'burger'",
    )

    # The paper's claims: page materialisation indexes strictly more content
    # than fragments, and its result list contains redundant (covered) pages
    # while Dash's does not.
    assert baseline.report.total_page_keywords > fragment_keywords
    assert baseline.report.pages_generated > engine.index.fragment_count
    assert redundancy > 0.0
    assert len(dash_combos) == len(set(dash_combos))


def test_ablation_fragments_vs_pages_tpch(benchmark):
    """The same comparison on a (tiny) TPC-H slice, capping the baseline's
    page enumeration so the benchmark stays tractable — which is itself the
    point: the page space explodes while the fragment count stays bounded."""
    tier = TpchScale("ablation", customers=10, orders_per_customer=4,
                     lineitems_per_order=3, parts=30, quantity_values=8)
    database = build_tpch(tier)
    analyzer = ApplicationAnalyzer(database)
    source = make_servlet_source("Orders", [("r", "r"), ("lo", "min"), ("hi", "max")],
                                 TPCH_QUERY_SQL["Q2"])
    analyzed = analyzer.analyze(source, name="Q2")
    application = analyzed.to_web_application("shop.example.com/Orders", source=source)

    def build_both():
        baseline = MaterializedPageSearch(application, database)
        baseline.build(max_pages=200)
        engine = DashEngine.build(application, database, algorithm="integrated")
        return baseline, engine

    baseline, engine = benchmark.pedantic(build_both, rounds=1, iterations=1)

    total_query_strings = len(application.enumerate_query_strings(database))
    print_table(
        ["quantity", "value"],
        [
            ("deducible query strings", total_query_strings),
            ("pages indexed by baseline (capped)", baseline.report.pages_generated),
            ("Dash fragments", engine.index.fragment_count),
            ("baseline keyword occurrences", baseline.report.total_page_keywords),
            ("fragment keyword occurrences", sum(engine.index.fragment_sizes.values())),
        ],
        title="Ablation (TPC-H slice): page space vs fragment space",
    )
    assert total_query_strings > engine.index.fragment_count
    assert baseline.report.total_page_keywords > sum(engine.index.fragment_sizes.values())
