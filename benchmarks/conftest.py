"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the paper's tables and figures.  Expensive artefacts
(generated datasets, crawled fragment indexes) are built once per session and
shared; the ``benchmark`` fixture then times only the operation each
table/figure actually measures.

Configuration:

* ``REPRO_BENCH_SCALE`` — multiplies the dataset tiers (default 1.0).  Use a
  smaller value (e.g. 0.5) for a faster smoke run of the whole suite.
* ``REPRO_BENCH_TIME_SCALE`` — the cost-model calibration factor mapping the
  laptop-scale datasets back into the paper's elapsed-time regime
  (default 400; see DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro.bench.settings import default_settings
from repro.core.fragments import derive_fragments
from repro.datasets.tpch import SCALES, build_tpch, tpch_queries


@pytest.fixture(scope="session")
def settings():
    return default_settings()


@pytest.fixture(scope="session")
def tpch_databases(settings):
    """The three dataset tiers (Table II), resized by the bench scale factor."""
    databases = {}
    for name in settings.datasets:
        tier = SCALES[name]
        if settings.dataset_scale != 1.0:
            tier = tier.scaled(settings.dataset_scale)
        databases[name] = build_tpch(tier)
    return databases


@pytest.fixture(scope="session")
def tpch_query_sets(tpch_databases):
    """Q1/Q2/Q3 parsed against each dataset tier."""
    return {name: tpch_queries(database) for name, database in tpch_databases.items()}


@pytest.fixture(scope="session")
def crawl_cache():
    """Session-wide cache of crawl results keyed by (scale, query, algorithm, ...)."""
    return {}


@pytest.fixture(scope="session")
def medium_q2_fragments(tpch_databases, tpch_query_sets):
    """Reference fragments of Q2 on the medium dataset (Figure 11 / Table IV input)."""
    return derive_fragments(tpch_query_sets["medium"]["Q2"], tpch_databases["medium"])
