"""Store-backend comparison: top-k search latency across storage backends.

Builds synthetic fragment sets of increasing size (fooddb-shaped: cuisine
equality chains over a budget range, Zipf-ish keyword mix with a few hot
keywords), loads them into every backend —

* ``seed``       — the seed implementation's search loop (eager global
                   seeding, full per-candidate rescoring) over the in-memory
                   store: the baseline the refactor is measured against,
* ``memory``     — :class:`InMemoryStore` behind the current searcher
                   (one-pass seed scoring + incremental page statistics),
* ``sharded-N``  — :class:`ShardedStore` with N hash partitions and the
                   per-shard seeding fan-out,
* ``disk``       — :class:`DiskStore`, the persistent sqlite backend,

— measures average search latency over cold/warm/hot keywords, verifies that
every backend returns exactly the seed path's ranked URLs, and emits
``BENCH_store_backends.json`` for tooling.

The disk backend is additionally measured on its reason to exist: cold
start.  ``cold_start`` rows compare rebuilding the store from fragments
into memory (the no-persistence restart path; re-crawling would come on
top) against re-attaching to the already-built sqlite file (what only the
disk backend can do), alongside the one-time cost of building onto disk
and the first post-attach search.

Run under pytest (``PYTHONPATH=src python -m pytest benchmarks/bench_store_backends.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_store_backends.py``).

Environment knobs: ``REPRO_BENCH_STORE_FRAGMENTS`` (comma-separated fragment
counts, default ``2000,12000``), ``REPRO_BENCH_STORE_REPEATS`` (timing
repetitions, default 5).
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import sqlite3
import tempfile
import time
from typing import Dict, List, Tuple

from repro.bench.reporting import print_table, write_json
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.scoring import DashScorer
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.store import DiskStore, InMemoryStore, ShardedStore
from repro.webapp.request import QueryStringSpec

FRAGMENT_COUNTS = tuple(
    int(value) for value in os.environ.get("REPRO_BENCH_STORE_FRAGMENTS", "2000,12000").split(",")
)
SHARD_COUNTS = (2, 4, 8)
REPEATS = int(os.environ.get("REPRO_BENCH_STORE_REPEATS", "5"))
K = 10
SIZE_THRESHOLDS = (200, 1000)

QUERY = fooddb_search_query(build_fooddb())
SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
URI = "www.example.com/Search"

#: Hot keywords planted into a large share of the fragments.
HOT_KEYWORDS = ("burger", "noodle", "coffee")


# ----------------------------------------------------------------------
# the seed implementation's search loop (the measured baseline)
# ----------------------------------------------------------------------
def _seed_identifier_order(identifier):
    """The seed's identifier ordering, uncached (the current one memoises)."""
    return tuple(
        (0, "") if component is None
        else (1, float(component)) if isinstance(component, (int, float)) and not isinstance(component, bool)
        else (2, str(component))
        for component in identifier
    )


class SeedTopKSearcher:
    """Replica of the pre-store search path: every seed is scored and pushed
    individually, and each expansion candidate re-scores the whole page."""

    def __init__(self, index: InvertedFragmentIndex, graph: FragmentGraph,
                 url_formulator: UrlFormulator) -> None:
        self.index = index
        self.graph = graph
        self.url_formulator = url_formulator

    def search(self, keywords, k=10, size_threshold=100):
        scorer = DashScorer(self.index, keywords)
        counter = itertools.count()
        queue = []
        for identifier in scorer.relevant_fragments():
            entry = (tuple(identifier),)
            heapq.heappush(queue, (-scorer.score(entry), next(counter), entry))
        consumed, results = set(), []
        while queue and len(results) < k:
            negative_score, _tie, fragments = heapq.heappop(queue)
            if len(fragments) == 1 and fragments[0] in consumed:
                continue
            expansion = self._expansion_candidate(fragments, scorer, size_threshold)
            if expansion is None:
                results.append(self._make_result(fragments, -negative_score, scorer))
                continue
            consumed.add(expansion)
            expanded = self._ordered(fragments + (expansion,))
            heapq.heappush(queue, (-scorer.score(expanded), next(counter), expanded))
        results.sort(key=lambda result: -result[1])
        return results

    def _expansion_candidate(self, fragments, scorer, size_threshold):
        if scorer.page_size(fragments) >= size_threshold:
            return None
        members = set(fragments)
        candidates = []
        for identifier in fragments:
            for neighbor in self.graph.neighbors(identifier):
                if neighbor not in members:
                    candidates.append(neighbor)
        if not candidates:
            return None
        unique_candidates = list(dict.fromkeys(candidates))

        def preference(candidate):
            relevant = scorer.fragment_is_relevant(candidate)
            resulting_score = scorer.score(self._ordered(fragments + (candidate,)))
            return (0 if relevant else 1, -resulting_score, _seed_identifier_order(candidate))

        unique_candidates.sort(key=preference)
        return unique_candidates[0]

    def _make_result(self, fragments, score, scorer):
        return (self.url_formulator.url_for_fragments(fragments), score, fragments)

    @staticmethod
    def _ordered(fragments):
        return tuple(sorted(set(fragments), key=_seed_identifier_order))


# ----------------------------------------------------------------------
# synthetic workload
# ----------------------------------------------------------------------
def synthetic_fragments(count: int, seed: int = 7) -> Dict[Tuple[str, int], Dict[str, int]]:
    """``count`` fragments in ~40-node cuisine chains with a mixed vocabulary."""
    rng = random.Random(seed)
    vocabulary = [f"kw{index:04d}" for index in range(1500)]
    fragments: Dict[Tuple[str, int], Dict[str, int]] = {}
    groups = max(1, count // 40)
    for index in range(count):
        identifier = (f"Cuisine{index % groups:04d}", 5 + index // groups)
        term_frequencies = {
            rng.choice(vocabulary): rng.randint(1, 4) for _ in range(rng.randint(8, 25))
        }
        if rng.random() < 0.5:
            term_frequencies[rng.choice(HOT_KEYWORDS)] = rng.randint(1, 3)
        fragments[identifier] = term_frequencies
    return fragments


def keyword_workload(index: InvertedFragmentIndex) -> Dict[str, str]:
    """One representative cold / warm / hot keyword (by document frequency)."""
    frequencies = index.document_frequencies()
    ranked = sorted(frequencies, key=lambda keyword: (frequencies[keyword], keyword))
    return {"cold": ranked[0], "warm": ranked[len(ranked) // 2], "hot": ranked[-1]}


def query_workload(index: InvertedFragmentIndex) -> Dict[str, List[str]]:
    """The measured queries: the three single keywords plus a mixed query.

    The mixed hot+warm+cold query is where the searcher's admissible seed
    bounds have IDF skew to work with — single-keyword queries only exercise
    the expansion-side pruning.
    """
    workload = keyword_workload(index)
    queries: Dict[str, List[str]] = {name: [keyword] for name, keyword in workload.items()}
    queries["mixed"] = [workload["hot"], workload["warm"], workload["cold"]]
    return queries


def build_backend(fragments, store):
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    sizes = {identifier: index.fragment_size(identifier) for identifier in fragments}
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    return index, graph


def searcher_for(name: str, fragments, early_termination: bool = True):
    if name == "seed":
        index, graph = build_backend(fragments, InMemoryStore())
        return SeedTopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))
    if name == "memory":
        store = InMemoryStore()
    elif name == "disk":
        store = DiskStore(
            os.path.join(tempfile.mkdtemp(prefix="repro-bench-disk-"), "store.sqlite")
        )
    else:
        store = ShardedStore(shards=int(name.split("-")[1]))
    index, graph = build_backend(fragments, store)
    return TopKSearcher(
        index, graph, UrlFormulator(QUERY, SPEC, URI), early_termination=early_termination
    )


def _table_bytes(connection: sqlite3.Connection, name: str) -> int:
    """On-disk bytes of one table or index.

    Uses the ``dbstat`` virtual table (btree pages actually occupied) when
    the sqlite build ships it, falling back to summed column lengths — an
    undercount that ignores page overhead, applied identically to both
    layouts so the ratio stays meaningful.
    """
    try:
        row = connection.execute(
            "SELECT COALESCE(SUM(pgsize), 0) FROM dbstat WHERE name = ?", (name,)
        ).fetchone()
        return int(row[0])
    except sqlite3.OperationalError:
        columns = [info[1] for info in connection.execute(f"PRAGMA table_info({name})")]
        if not columns:
            return 0
        expression = " + ".join(f"COALESCE(LENGTH({column}), 9)" for column in columns)
        return int(
            connection.execute(f"SELECT COALESCE(SUM({expression}), 0) FROM {name}").fetchone()[0]
        )


_V1_LAYOUT_DDL = """
CREATE TABLE postings (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    keyword     TEXT NOT NULL,
    fragment    TEXT NOT NULL,
    tie         TEXT NOT NULL,
    occurrences INTEGER NOT NULL
);
CREATE INDEX postings_by_keyword ON postings (keyword, occurrences DESC, tie);
CREATE INDEX postings_by_fragment ON postings (fragment);
"""


def measure_index_layout(store) -> Dict:
    """Byte footprint of the v2 block layout vs the same postings as v1 rows.

    Replays the store's inverted lists into a scratch file using the schema
    v1 row-per-posting layout — the ``postings`` table plus the two indexes
    v1 needed to serve keyword and fragment reads — and compares against the
    v2 ``posting_blocks`` table, which needs no secondary index (its
    ``WITHOUT ROWID`` primary key *is* the keyword access path and the
    ``fragment_terms`` forward index replaces the by-fragment scans).  The
    ratio is the delta+varint block compression the searcher actually pays
    for on disk.
    """
    from repro.store.disk import encode_identifier

    store.finalize()
    connection = sqlite3.connect(store.path)
    try:
        connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        v2_tables = {
            name: _table_bytes(connection, name)
            for name in ("posting_blocks", "fragment_terms", "fragments")
        }
    finally:
        connection.close()
    scratch_path = store.path + ".v1-layout"
    scratch = sqlite3.connect(scratch_path)
    try:
        scratch.executescript(_V1_LAYOUT_DDL)
        scratch.executemany(
            "INSERT INTO postings (keyword, fragment, tie, occurrences) VALUES (?, ?, ?, ?)",
            (
                (
                    keyword,
                    encode_identifier(posting.document_id),
                    str(tuple(posting.document_id)),
                    posting.term_frequency,
                )
                for keyword, postings in store.iter_items()
                for posting in postings
            ),
        )
        scratch.commit()
        v1_bytes = sum(
            _table_bytes(scratch, name)
            for name in ("postings", "postings_by_keyword", "postings_by_fragment")
        )
    finally:
        scratch.close()
        os.unlink(scratch_path)
    v2_bytes = v2_tables["posting_blocks"]
    # decoded-block parity: every keyword's concatenated decoded blocks must
    # reproduce the canonical sorted posting list exactly — the flag
    # tools/check_bench_parity.py fails CI on when it regresses
    block_parity_ok = True
    directories = store.posting_blocks_for_many(list(store.vocabulary()))
    for keyword, postings in store.iter_items():
        handle = directories[keyword]
        decoded = tuple(
            posting
            for block_no in range(len(handle.summaries))
            for posting in handle.decode(block_no)
        )
        if decoded != tuple(postings):
            block_parity_ok = False
    return {
        "v2_table_bytes": v2_tables,
        "v1_postings_bytes": v1_bytes,
        "v2_postings_bytes": v2_bytes,
        "compression_ratio": round(v1_bytes / v2_bytes, 2) if v2_bytes else float("inf"),
        "block_parity_ok": block_parity_ok,
    }


def measure_cold_start(fragments, hot_keyword: str) -> Dict[str, float]:
    """Rebuild-from-fragments vs re-attach-to-file, for one fragment set.

    ``rebuild`` is the honest no-persistence restart path: index + graph
    construction into a fresh in-memory store (crawling would come on top
    in a real restart, making the comparison conservative).  ``disk_build``
    is the one-time cost of building onto the sqlite file instead.
    ``open`` is the disk backend's restart path: attach to the existing
    file, wire the facades, and (``open_first_search``) answer the first
    query with page-cache-cold reads.
    """
    started = time.perf_counter()
    build_backend(fragments, InMemoryStore())
    rebuild_seconds = time.perf_counter() - started

    path = os.path.join(tempfile.mkdtemp(prefix="repro-bench-cold-"), "store.sqlite")
    started = time.perf_counter()
    index, graph = build_backend(fragments, DiskStore(path))
    disk_build_seconds = time.perf_counter() - started
    index.store.close()

    started = time.perf_counter()
    reopened = DiskStore(path, create=False)
    index = InvertedFragmentIndex(store=reopened)
    graph = FragmentGraph(QUERY, store=reopened)
    searcher = TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))
    open_seconds = time.perf_counter() - started
    started = time.perf_counter()
    searcher.search([hot_keyword], k=K, size_threshold=SIZE_THRESHOLDS[0])
    first_search_seconds = time.perf_counter() - started
    return {
        "rebuild_s": round(rebuild_seconds, 4),
        "disk_build_s": round(disk_build_seconds, 4),
        "open_s": round(open_seconds, 4),
        "open_first_search_s": round(first_search_seconds, 4),
        "open_speedup_vs_rebuild": round(
            rebuild_seconds / open_seconds if open_seconds else float("inf"), 2
        ),
    }


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def _urls(results) -> List[str]:
    return [result[0] if isinstance(result, tuple) else result.url for result in results]


def run_comparison() -> Dict:
    backends = ["seed", "memory"] + [f"sharded-{count}" for count in SHARD_COUNTS] + ["disk"]
    payload = {"k": K, "size_thresholds": list(SIZE_THRESHOLDS), "repeats": REPEATS,
               "fragment_counts": list(FRAGMENT_COUNTS), "measurements": [],
               "cold_start": [], "index_layout": []}
    rows = []
    for count in FRAGMENT_COUNTS:
        fragments = synthetic_fragments(count)
        searchers = {name: searcher_for(name, fragments) for name in backends}
        queries = query_workload(searchers["memory"].index)
        reference_urls = {}
        for name in backends:
            searcher = searchers[name]
            per_backend_ms = []
            pruned = {"seeds_scored": 0, "pruned_dequeues": 0, "pruned_expansions": 0,
                      "blocks_skipped": 0, "blocks_decoded": 0, "postings_decoded": 0}
            parity_ok = True
            for temperature, keywords in queries.items():
                for size_threshold in SIZE_THRESHOLDS:
                    searcher.search(keywords, k=K, size_threshold=size_threshold)  # warm-up
                    samples = []
                    for _ in range(REPEATS):
                        started = time.perf_counter()
                        results = searcher.search(keywords, k=K, size_threshold=size_threshold)
                        samples.append(time.perf_counter() - started)
                    # best-of-N: robust against scheduler noise on shared boxes
                    elapsed_ms = min(samples) * 1000.0
                    per_backend_ms.append(elapsed_ms)
                    statistics = getattr(searcher, "last_statistics", None)
                    if statistics is not None:  # the seed replica has none
                        for field in pruned:
                            pruned[field] += getattr(statistics, field)
                    key = (temperature, size_threshold)
                    # every backend must rank exactly like the seed path
                    if name == "seed":
                        reference_urls[key] = _urls(results)
                    else:
                        matched = _urls(results) == reference_urls[key]
                        parity_ok = parity_ok and matched
                        assert matched, (name, count, key)
            average_ms = sum(per_backend_ms) / len(per_backend_ms)
            measurement = {
                "fragments": count,
                "backend": name,
                "avg_search_ms": round(average_ms, 4),
                # computed from the actual URL comparisons above (the seed
                # row is its own reference), so tools/check_bench_parity.py
                # keeps its guarantee even if the hard assert is ever removed
                "parity_ok": parity_ok,
            }
            if name != "seed":
                measurement.update(pruned)
                considered = pruned["blocks_skipped"] + pruned["blocks_decoded"]
                measurement["block_skip_rate"] = (
                    round(pruned["blocks_skipped"] / considered, 4) if considered else 0.0
                )
            payload["measurements"].append(measurement)
        seed_ms = next(m["avg_search_ms"] for m in payload["measurements"]
                       if m["fragments"] == count and m["backend"] == "seed")
        for name in backends:
            entry = next(m for m in payload["measurements"]
                         if m["fragments"] == count and m["backend"] == name)
            average_ms = entry["avg_search_ms"]
            speedup = seed_ms / average_ms if average_ms else float("inf")
            entry["speedup_vs_seed"] = round(speedup, 2)
            skip_rate = entry.get("block_skip_rate")
            rows.append((count, name, round(average_ms, 4), round(speedup, 2),
                         "-" if skip_rate is None else f"{skip_rate:.2%}"))
        payload["index_layout"].append(
            {"fragments": count, **measure_index_layout(searchers["disk"].index.store)}
        )
        cold = measure_cold_start(fragments, queries["hot"][0])
        payload["cold_start"].append({"fragments": count, **cold})
        for searcher in searchers.values():
            # release the sharded read executors / disk sqlite connections
            searcher.index.store.close()
    print_table(
        ["fragments", "backend", "avg search (ms)", "speedup vs seed", "block skip rate"],
        rows,
        title="Store backends: average top-k search latency (identical ranked URLs verified)",
    )
    print_table(
        ["fragments", "v1 postings+idx (B)", "v2 blocks (B)", "compression", "fragment_terms (B)"],
        [
            (
                entry["fragments"],
                entry["v1_postings_bytes"],
                entry["v2_postings_bytes"],
                f"{entry['compression_ratio']:.2f}x",
                entry["v2_table_bytes"]["fragment_terms"],
            )
            for entry in payload["index_layout"]
        ],
        title="On-disk index layout: v1 row-per-posting vs v2 delta+varint blocks",
    )
    print_table(
        ["fragments", "rebuild (s)", "disk build (s)", "open (s)", "first search (s)",
         "open speedup"],
        [
            (
                entry["fragments"],
                entry["rebuild_s"],
                entry["disk_build_s"],
                entry["open_s"],
                entry["open_first_search_s"],
                entry["open_speedup_vs_rebuild"],
            )
            for entry in payload["cold_start"]
        ],
        title="Disk backend cold start: in-memory rebuild vs re-attach to the sqlite file",
    )
    path = write_json("BENCH_store_backends.json", payload)
    print(f"\nwrote {path}")
    return payload


def test_store_backend_comparison(benchmark):
    payload = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    largest = max(FRAGMENT_COUNTS)
    speedups = {
        measurement["backend"]: measurement["speedup_vs_seed"]
        for measurement in payload["measurements"]
        if measurement["fragments"] == largest
    }
    # The refactored search path must beat the seed path clearly on the
    # largest synthetic fragment set (acceptance: >= 2x).
    assert max(speedups.values()) >= 2.0, speedups
    # The read-connection pool + bounded reads must lift the disk backend
    # out of the serialized-sqlite regime (was ~1.2x before the overhaul;
    # ~2.2x typical now — the CI floor is deliberately conservative).
    assert speedups["disk"] >= 1.5, speedups
    # Every backend recorded its ranked-URL parity verdict.
    assert all(m["parity_ok"] for m in payload["measurements"])
    # The admissible bounds must actually prune work on this workload.
    pruned_total = sum(
        m.get("pruned_dequeues", 0) + m.get("pruned_expansions", 0)
        for m in payload["measurements"]
    )
    assert pruned_total > 0, payload["measurements"]
    # Block-granular accounting must be wired through on every backend.  A
    # whole block is skippable only when *all* of its seeds are prunable,
    # and this workload's bounds prune fewer than BLOCK_SIZE consecutive
    # seeds per list (see pruned_dequeues), so full-block skips legitimately
    # sit at zero here — tests/test_read_path.py exercises an impact-skewed
    # corpus where blocks_skipped > 0 is required.
    for measurement in payload["measurements"]:
        if measurement["backend"] == "seed":
            continue
        assert measurement["blocks_decoded"] > 0, measurement
        assert measurement["postings_decoded"] > 0, measurement
        assert measurement["blocks_skipped"] >= 0, measurement
    # The delta+varint block BLOBs must at least halve the on-disk postings
    # footprint relative to the v1 row-per-posting layout, and the decoded
    # blocks must reproduce the canonical posting lists exactly.
    for entry in payload["index_layout"]:
        assert entry["compression_ratio"] >= 2.0, entry
        assert entry["block_parity_ok"] is True, entry
    # Persistence must pay off on restart: re-attaching to the sqlite file
    # has to be far cheaper than rebuilding the store from fragments.
    for entry in payload["cold_start"]:
        assert entry["open_speedup_vs_rebuild"] > 1.0, entry


def test_compressed_layout_smoke():
    """Fast CI gate on the compressed layout alone (no timing loops):
    compression ratio and decoded-block parity on a small disk corpus."""
    fragments = synthetic_fragments(800)
    store = DiskStore(os.path.join(tempfile.mkdtemp(prefix="repro-layout-smoke-"), "s.sqlite"))
    try:
        build_backend(fragments, store)
        layout = measure_index_layout(store)
        assert layout["block_parity_ok"] is True, layout
        assert layout["compression_ratio"] >= 2.0, layout
        assert layout["v2_postings_bytes"] > 0, layout
    finally:
        store.close()


if __name__ == "__main__":
    run_comparison()
