"""Store-backend comparison: top-k search latency across storage backends.

Builds synthetic fragment sets of increasing size (fooddb-shaped: cuisine
equality chains over a budget range, Zipf-ish keyword mix with a few hot
keywords), loads them into every backend —

* ``seed``       — the seed implementation's search loop (eager global
                   seeding, full per-candidate rescoring) over the in-memory
                   store: the baseline the refactor is measured against,
* ``memory``     — :class:`InMemoryStore` behind the current searcher
                   (one-pass seed scoring + incremental page statistics),
* ``sharded-N``  — :class:`ShardedStore` with N hash partitions and the
                   per-shard seeding fan-out,
* ``disk``       — :class:`DiskStore`, the persistent sqlite backend,

— measures average search latency over cold/warm/hot keywords, verifies that
every backend returns exactly the seed path's ranked URLs, and emits
``BENCH_store_backends.json`` for tooling.

The disk backend is additionally measured on its reason to exist: cold
start.  ``cold_start`` rows compare rebuilding the store from fragments
into memory (the no-persistence restart path; re-crawling would come on
top) against re-attaching to the already-built sqlite file (what only the
disk backend can do), alongside the one-time cost of building onto disk
and the first post-attach search.

Run under pytest (``PYTHONPATH=src python -m pytest benchmarks/bench_store_backends.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_store_backends.py``).

Environment knobs: ``REPRO_BENCH_STORE_FRAGMENTS`` (comma-separated fragment
counts, default ``2000,12000``), ``REPRO_BENCH_STORE_REPEATS`` (timing
repetitions, default 5).
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import tempfile
import time
from typing import Dict, List, Tuple

from repro.bench.reporting import print_table, write_json
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.scoring import DashScorer
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.store import DiskStore, InMemoryStore, ShardedStore
from repro.webapp.request import QueryStringSpec

FRAGMENT_COUNTS = tuple(
    int(value) for value in os.environ.get("REPRO_BENCH_STORE_FRAGMENTS", "2000,12000").split(",")
)
SHARD_COUNTS = (2, 4, 8)
REPEATS = int(os.environ.get("REPRO_BENCH_STORE_REPEATS", "5"))
K = 10
SIZE_THRESHOLDS = (200, 1000)

QUERY = fooddb_search_query(build_fooddb())
SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
URI = "www.example.com/Search"

#: Hot keywords planted into a large share of the fragments.
HOT_KEYWORDS = ("burger", "noodle", "coffee")


# ----------------------------------------------------------------------
# the seed implementation's search loop (the measured baseline)
# ----------------------------------------------------------------------
def _seed_identifier_order(identifier):
    """The seed's identifier ordering, uncached (the current one memoises)."""
    return tuple(
        (0, "") if component is None
        else (1, float(component)) if isinstance(component, (int, float)) and not isinstance(component, bool)
        else (2, str(component))
        for component in identifier
    )


class SeedTopKSearcher:
    """Replica of the pre-store search path: every seed is scored and pushed
    individually, and each expansion candidate re-scores the whole page."""

    def __init__(self, index: InvertedFragmentIndex, graph: FragmentGraph,
                 url_formulator: UrlFormulator) -> None:
        self.index = index
        self.graph = graph
        self.url_formulator = url_formulator

    def search(self, keywords, k=10, size_threshold=100):
        scorer = DashScorer(self.index, keywords)
        counter = itertools.count()
        queue = []
        for identifier in scorer.relevant_fragments():
            entry = (tuple(identifier),)
            heapq.heappush(queue, (-scorer.score(entry), next(counter), entry))
        consumed, results = set(), []
        while queue and len(results) < k:
            negative_score, _tie, fragments = heapq.heappop(queue)
            if len(fragments) == 1 and fragments[0] in consumed:
                continue
            expansion = self._expansion_candidate(fragments, scorer, size_threshold)
            if expansion is None:
                results.append(self._make_result(fragments, -negative_score, scorer))
                continue
            consumed.add(expansion)
            expanded = self._ordered(fragments + (expansion,))
            heapq.heappush(queue, (-scorer.score(expanded), next(counter), expanded))
        results.sort(key=lambda result: -result[1])
        return results

    def _expansion_candidate(self, fragments, scorer, size_threshold):
        if scorer.page_size(fragments) >= size_threshold:
            return None
        members = set(fragments)
        candidates = []
        for identifier in fragments:
            for neighbor in self.graph.neighbors(identifier):
                if neighbor not in members:
                    candidates.append(neighbor)
        if not candidates:
            return None
        unique_candidates = list(dict.fromkeys(candidates))

        def preference(candidate):
            relevant = scorer.fragment_is_relevant(candidate)
            resulting_score = scorer.score(self._ordered(fragments + (candidate,)))
            return (0 if relevant else 1, -resulting_score, _seed_identifier_order(candidate))

        unique_candidates.sort(key=preference)
        return unique_candidates[0]

    def _make_result(self, fragments, score, scorer):
        return (self.url_formulator.url_for_fragments(fragments), score, fragments)

    @staticmethod
    def _ordered(fragments):
        return tuple(sorted(set(fragments), key=_seed_identifier_order))


# ----------------------------------------------------------------------
# synthetic workload
# ----------------------------------------------------------------------
def synthetic_fragments(count: int, seed: int = 7) -> Dict[Tuple[str, int], Dict[str, int]]:
    """``count`` fragments in ~40-node cuisine chains with a mixed vocabulary."""
    rng = random.Random(seed)
    vocabulary = [f"kw{index:04d}" for index in range(1500)]
    fragments: Dict[Tuple[str, int], Dict[str, int]] = {}
    groups = max(1, count // 40)
    for index in range(count):
        identifier = (f"Cuisine{index % groups:04d}", 5 + index // groups)
        term_frequencies = {
            rng.choice(vocabulary): rng.randint(1, 4) for _ in range(rng.randint(8, 25))
        }
        if rng.random() < 0.5:
            term_frequencies[rng.choice(HOT_KEYWORDS)] = rng.randint(1, 3)
        fragments[identifier] = term_frequencies
    return fragments


def keyword_workload(index: InvertedFragmentIndex) -> Dict[str, str]:
    """One representative cold / warm / hot keyword (by document frequency)."""
    frequencies = index.document_frequencies()
    ranked = sorted(frequencies, key=lambda keyword: (frequencies[keyword], keyword))
    return {"cold": ranked[0], "warm": ranked[len(ranked) // 2], "hot": ranked[-1]}


def query_workload(index: InvertedFragmentIndex) -> Dict[str, List[str]]:
    """The measured queries: the three single keywords plus a mixed query.

    The mixed hot+warm+cold query is where the searcher's admissible seed
    bounds have IDF skew to work with — single-keyword queries only exercise
    the expansion-side pruning.
    """
    workload = keyword_workload(index)
    queries: Dict[str, List[str]] = {name: [keyword] for name, keyword in workload.items()}
    queries["mixed"] = [workload["hot"], workload["warm"], workload["cold"]]
    return queries


def build_backend(fragments, store):
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    sizes = {identifier: index.fragment_size(identifier) for identifier in fragments}
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    return index, graph


def searcher_for(name: str, fragments):
    if name == "seed":
        index, graph = build_backend(fragments, InMemoryStore())
        return SeedTopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))
    if name == "memory":
        store = InMemoryStore()
    elif name == "disk":
        store = DiskStore(
            os.path.join(tempfile.mkdtemp(prefix="repro-bench-disk-"), "store.sqlite")
        )
    else:
        store = ShardedStore(shards=int(name.split("-")[1]))
    index, graph = build_backend(fragments, store)
    return TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))


def measure_cold_start(fragments, hot_keyword: str) -> Dict[str, float]:
    """Rebuild-from-fragments vs re-attach-to-file, for one fragment set.

    ``rebuild`` is the honest no-persistence restart path: index + graph
    construction into a fresh in-memory store (crawling would come on top
    in a real restart, making the comparison conservative).  ``disk_build``
    is the one-time cost of building onto the sqlite file instead.
    ``open`` is the disk backend's restart path: attach to the existing
    file, wire the facades, and (``open_first_search``) answer the first
    query with page-cache-cold reads.
    """
    started = time.perf_counter()
    build_backend(fragments, InMemoryStore())
    rebuild_seconds = time.perf_counter() - started

    path = os.path.join(tempfile.mkdtemp(prefix="repro-bench-cold-"), "store.sqlite")
    started = time.perf_counter()
    index, graph = build_backend(fragments, DiskStore(path))
    disk_build_seconds = time.perf_counter() - started
    index.store.close()

    started = time.perf_counter()
    reopened = DiskStore(path, create=False)
    index = InvertedFragmentIndex(store=reopened)
    graph = FragmentGraph(QUERY, store=reopened)
    searcher = TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))
    open_seconds = time.perf_counter() - started
    started = time.perf_counter()
    searcher.search([hot_keyword], k=K, size_threshold=SIZE_THRESHOLDS[0])
    first_search_seconds = time.perf_counter() - started
    return {
        "rebuild_s": round(rebuild_seconds, 4),
        "disk_build_s": round(disk_build_seconds, 4),
        "open_s": round(open_seconds, 4),
        "open_first_search_s": round(first_search_seconds, 4),
        "open_speedup_vs_rebuild": round(
            rebuild_seconds / open_seconds if open_seconds else float("inf"), 2
        ),
    }


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def _urls(results) -> List[str]:
    return [result[0] if isinstance(result, tuple) else result.url for result in results]


def run_comparison() -> Dict:
    backends = ["seed", "memory"] + [f"sharded-{count}" for count in SHARD_COUNTS] + ["disk"]
    payload = {"k": K, "size_thresholds": list(SIZE_THRESHOLDS), "repeats": REPEATS,
               "fragment_counts": list(FRAGMENT_COUNTS), "measurements": [],
               "cold_start": []}
    rows = []
    for count in FRAGMENT_COUNTS:
        fragments = synthetic_fragments(count)
        searchers = {name: searcher_for(name, fragments) for name in backends}
        queries = query_workload(searchers["memory"].index)
        reference_urls = {}
        for name in backends:
            searcher = searchers[name]
            per_backend_ms = []
            pruned = {"seeds_scored": 0, "pruned_dequeues": 0, "pruned_expansions": 0}
            parity_ok = True
            for temperature, keywords in queries.items():
                for size_threshold in SIZE_THRESHOLDS:
                    searcher.search(keywords, k=K, size_threshold=size_threshold)  # warm-up
                    samples = []
                    for _ in range(REPEATS):
                        started = time.perf_counter()
                        results = searcher.search(keywords, k=K, size_threshold=size_threshold)
                        samples.append(time.perf_counter() - started)
                    # best-of-N: robust against scheduler noise on shared boxes
                    elapsed_ms = min(samples) * 1000.0
                    per_backend_ms.append(elapsed_ms)
                    statistics = getattr(searcher, "last_statistics", None)
                    if statistics is not None:  # the seed replica has none
                        for field in pruned:
                            pruned[field] += getattr(statistics, field)
                    key = (temperature, size_threshold)
                    # every backend must rank exactly like the seed path
                    if name == "seed":
                        reference_urls[key] = _urls(results)
                    else:
                        matched = _urls(results) == reference_urls[key]
                        parity_ok = parity_ok and matched
                        assert matched, (name, count, key)
            average_ms = sum(per_backend_ms) / len(per_backend_ms)
            measurement = {
                "fragments": count,
                "backend": name,
                "avg_search_ms": round(average_ms, 4),
                # computed from the actual URL comparisons above (the seed
                # row is its own reference), so tools/check_bench_parity.py
                # keeps its guarantee even if the hard assert is ever removed
                "parity_ok": parity_ok,
            }
            if name != "seed":
                measurement.update(pruned)
            payload["measurements"].append(measurement)
        seed_ms = next(m["avg_search_ms"] for m in payload["measurements"]
                       if m["fragments"] == count and m["backend"] == "seed")
        for name in backends:
            average_ms = next(m["avg_search_ms"] for m in payload["measurements"]
                              if m["fragments"] == count and m["backend"] == name)
            speedup = seed_ms / average_ms if average_ms else float("inf")
            rows.append((count, name, round(average_ms, 4), round(speedup, 2)))
            for measurement in payload["measurements"]:
                if measurement["fragments"] == count and measurement["backend"] == name:
                    measurement["speedup_vs_seed"] = round(speedup, 2)
        cold = measure_cold_start(fragments, queries["hot"][0])
        payload["cold_start"].append({"fragments": count, **cold})
        for searcher in searchers.values():
            # release the sharded read executors / disk sqlite connections
            searcher.index.store.close()
    print_table(
        ["fragments", "backend", "avg search (ms)", "speedup vs seed"],
        rows,
        title="Store backends: average top-k search latency (identical ranked URLs verified)",
    )
    print_table(
        ["fragments", "rebuild (s)", "disk build (s)", "open (s)", "first search (s)",
         "open speedup"],
        [
            (
                entry["fragments"],
                entry["rebuild_s"],
                entry["disk_build_s"],
                entry["open_s"],
                entry["open_first_search_s"],
                entry["open_speedup_vs_rebuild"],
            )
            for entry in payload["cold_start"]
        ],
        title="Disk backend cold start: in-memory rebuild vs re-attach to the sqlite file",
    )
    path = write_json("BENCH_store_backends.json", payload)
    print(f"\nwrote {path}")
    return payload


def test_store_backend_comparison(benchmark):
    payload = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    largest = max(FRAGMENT_COUNTS)
    speedups = {
        measurement["backend"]: measurement["speedup_vs_seed"]
        for measurement in payload["measurements"]
        if measurement["fragments"] == largest
    }
    # The refactored search path must beat the seed path clearly on the
    # largest synthetic fragment set (acceptance: >= 2x).
    assert max(speedups.values()) >= 2.0, speedups
    # The read-connection pool + bounded reads must lift the disk backend
    # out of the serialized-sqlite regime (was ~1.2x before the overhaul;
    # ~2.2x typical now — the CI floor is deliberately conservative).
    assert speedups["disk"] >= 1.5, speedups
    # Every backend recorded its ranked-URL parity verdict.
    assert all(m["parity_ok"] for m in payload["measurements"])
    # The admissible bounds must actually prune work on this workload.
    pruned_total = sum(
        m.get("pruned_dequeues", 0) + m.get("pruned_expansions", 0)
        for m in payload["measurements"]
    )
    assert pruned_total > 0, payload["measurements"]
    # Persistence must pay off on restart: re-attaching to the sqlite file
    # has to be far cheaper than rebuilding the store from fragments.
    for entry in payload["cold_start"]:
        assert entry["open_speedup_vs_rebuild"] > 1.0, entry


if __name__ == "__main__":
    run_comparison()
