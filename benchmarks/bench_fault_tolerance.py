"""Fault-tolerance benchmark: availability and latency under cluster chaos.

Drives the :class:`~repro.cluster.SearchCluster` router through a seeded
:class:`~repro.faults.FaultPlane` and measures the three things the fault
machinery promises:

1. **Zero-fault overhead** — the routed query sweep with the full fault
   stack attached (plane-wrapped stores, per-partition candidate lists,
   breaker bookkeeping) but zero rules firing, against the bare PR 7-style
   router (no plane, no deadline) over the same corpus.  Summed per-query
   minimum latency over N interleaved rounds, with the baseline measured
   twice so same-config disparity calibrates residual measurement noise;
   the acceptance floor is <= 5% overhead beyond that noise at full scale.
2. **Node-kill chaos** — a partition primary is killed outright; the sweep
   runs at replicas=1 (unrecoverable: degraded answers) and replicas=2
   (recoverable: failover to the fresh replica).  Reported per
   configuration: availability (% of queries answering *complete*), p99
   latency, failover count, and — at replicas=2 — byte-parity against the
   single-store reference with zero partial results.
3. **Latency-spike chaos** — one node's directory reads stall far past the
   query deadline every Nth call; the deadline preempts the read and fails
   over.  Same availability/p99 split at replicas 1 vs 2.
4. **Cached-DF survival** — the availability win of the epoch-validated
   :class:`~repro.cluster.TermStatsCache`: at replicas=1 the cache is
   warmed while healthy, then a node is killed.  Queries whose consulted
   partitions are all alive skip the DF scatter *and* prune the dead
   partitions (bound zero), so they answer complete with byte parity —
   where the always-scatter router recorded 0% availability.  Queries that
   do consult the dead partitions still degrade gracefully.

Run under pytest (``PYTHONPATH=src python -m pytest benchmarks/bench_fault_tolerance.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_fault_tolerance.py``);
emits ``BENCH_fault_tolerance.json``.

Environment knobs: ``REPRO_BENCH_FT_FRAGMENTS`` (synthetic fragment count,
default 3000), ``REPRO_BENCH_FT_QUERIES`` (stream length, default 120),
``REPRO_BENCH_FT_NODES`` (default 4), ``REPRO_BENCH_FT_ROUNDS`` (interleaved
measurement rounds for the overhead section, default 5), ``REPRO_BENCH_FT_DEADLINE_MS``
(per-query failover budget for the spike section, default 150),
``REPRO_BENCH_FT_SPIKE_MS`` (injected stall, default 400).
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.reporting import print_table, write_json
from repro.cluster import GroupPartitioner, SearchCluster
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.workloads import zipf_keyword_queries
from repro.faults import FaultPlane, FaultRule
from repro.store import InMemoryStore

from bench_store_backends import QUERY, SPEC, URI, synthetic_fragments

FRAGMENTS = int(os.environ.get("REPRO_BENCH_FT_FRAGMENTS", "3000"))
QUERY_COUNT = int(os.environ.get("REPRO_BENCH_FT_QUERIES", "120"))
NODES = int(os.environ.get("REPRO_BENCH_FT_NODES", "4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_FT_ROUNDS", "5"))
DEADLINE_SECONDS = int(os.environ.get("REPRO_BENCH_FT_DEADLINE_MS", "150")) / 1000.0
SPIKE_SECONDS = int(os.environ.get("REPRO_BENCH_FT_SPIKE_MS", "400")) / 1000.0
K = 10
SIZE_THRESHOLD = 200
SKEW = 1.1
OVERHEAD_FLOOR_PCT = 5.0


def build_searcher(fragments, store) -> TopKSearcher:
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    sizes = {identifier: index.fragment_size(identifier) for identifier in fragments}
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    return TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))


def as_comparable(results) -> List[Tuple]:
    return [(r.url, r.score, r.fragments, r.size) for r in results]


def percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))]


def sweep(cluster, queries) -> Tuple[List[float], int, int]:
    """One sequential query sweep: per-query latencies, completes, partials."""
    latencies: List[float] = []
    complete = 0
    partial = 0
    for keywords in queries:
        started = time.perf_counter()
        detailed = cluster.router.search_detailed(
            keywords, k=K, size_threshold=SIZE_THRESHOLD
        )
        latencies.append(time.perf_counter() - started)
        if detailed.statistics.complete:
            complete += 1
        else:
            partial += 1
    return latencies, complete, partial


# ----------------------------------------------------------------------
# section 1: zero-fault overhead of the fault machinery
# ----------------------------------------------------------------------
def run_zero_fault_overhead(source_store, queries) -> Dict:
    def timed_sweep(
        fault_plane: Optional[FaultPlane], deadline: Optional[float]
    ) -> List[float]:
        cluster = SearchCluster.build(
            QUERY, SPEC, URI, source_store,
            nodes=NODES, replicas=2, partitions=NODES,
            fault_plane=fault_plane, deadline_seconds=deadline,
        )
        try:
            gc.collect()
            latencies = []
            for keywords in queries:
                started = time.perf_counter()
                cluster.router.search_detailed(
                    keywords, k=K, size_threshold=SIZE_THRESHOLD
                )
                latencies.append(time.perf_counter() - started)
            return latencies
        finally:
            cluster.close()

    def fold_minimum(
        accumulated: Optional[List[float]], latencies: List[float]
    ) -> List[float]:
        if accumulated is None:
            return latencies
        return [min(a, b) for a, b in zip(accumulated, latencies)]

    # Measuring a ~0% difference on shared hardware takes four defenses:
    # an untimed warm-up sweep (burstable CPU quotas run the first seconds
    # of a process faster than steady state, gifting whichever config goes
    # first), interleaved rounds with rotating order (so monotonic process
    # drift bills no config), per-query *minimum* latency folded across
    # rounds (scheduler bursts contaminate different queries in different
    # rounds, so the fold strips them the way timeit's min-of-repeats
    # does), and a calibration config — the bare baseline measured twice,
    # independently: whatever disparity survives between those two
    # identical configurations is pure measurement noise, and the overhead
    # verdict is only meaningful beyond it.
    configurations = ("baseline", "baseline_check", "fault_stack")
    timed_sweep(None, None)
    floors: Dict[str, Optional[List[float]]] = {name: None for name in configurations}
    for round_index in range(ROUNDS):
        rotation = round_index % len(configurations)
        order = configurations[rotation:] + configurations[:rotation]
        for name in order:
            if name == "fault_stack":
                latencies = timed_sweep(FaultPlane(seed=17), DEADLINE_SECONDS)
            else:
                latencies = timed_sweep(None, None)
            floors[name] = fold_minimum(floors[name], latencies)

    baseline = sum(floors["baseline"])
    baseline_check = sum(floors["baseline_check"])
    fault_stack = sum(floors["fault_stack"])
    overhead_pct = (fault_stack / baseline - 1.0) * 100.0
    noise_pct = abs(baseline_check / baseline - 1.0) * 100.0
    return {
        "rounds": ROUNDS,
        "queries": len(queries),
        "baseline_seconds": baseline,
        "baseline_check_seconds": baseline_check,
        "fault_stack_seconds": fault_stack,
        "overhead_pct": overhead_pct,
        "noise_pct": noise_pct,
        "overhead_floor_pct": OVERHEAD_FLOOR_PCT,
        "note": (
            "summed per-query minimum latency across N interleaved rounds; "
            "baseline is the bare router (no plane, no deadline), "
            "baseline_check is that same configuration measured again "
            "(their disparity = residual measurement noise), fault stack "
            "is plane-wrapped stores + candidate lists + breaker "
            "bookkeeping with zero rules firing"
        ),
    }


# ----------------------------------------------------------------------
# sections 2 + 3: chaos sweeps at replicas 1 vs 2
# ----------------------------------------------------------------------
def run_chaos_sweep(
    source_store,
    queries,
    reference,
    chaos: str,
) -> Dict:
    points = []
    for replicas in (1, 2):
        plane = FaultPlane(seed=23)
        cluster = SearchCluster.build(
            QUERY, SPEC, URI, source_store,
            nodes=NODES, replicas=replicas, partitions=NODES,
            fault_plane=plane,
            deadline_seconds=DEADLINE_SECONDS if chaos == "latency_spike" else None,
            degraded_ok=True,
            breaker_reset_seconds=300.0,
        )
        try:
            victim = cluster.assignment(0).primary
            if chaos == "node_kill":
                plane.kill_node(victim)
            else:
                plane.add_rule(
                    FaultRule(
                        kind="latency",
                        node=victim,
                        operation="posting_blocks_for_many",
                        every=4,
                        latency_seconds=SPIKE_SECONDS,
                    )
                )
            latencies, complete, partial = sweep(cluster, queries)
            parity_ok = True
            if replicas >= 2:
                # Recoverable chaos must be invisible: re-sweep and compare
                # byte-for-byte against the single-store reference.
                for keywords in queries:
                    routed = cluster.router.search_detailed(
                        keywords, k=K, size_threshold=SIZE_THRESHOLD
                    )
                    if as_comparable(routed.results) != reference[keywords]:
                        parity_ok = False
                        break
            lifetime = cluster.router.lifetime_statistics()
            points.append(
                {
                    "replicas": replicas,
                    "victim": victim,
                    "queries": len(queries),
                    "availability_pct": 100.0 * complete / len(queries),
                    "partial_results": partial,
                    "p50_latency_ms": percentile(latencies, 0.50) * 1000.0,
                    "p99_latency_ms": percentile(latencies, 0.99) * 1000.0,
                    "failovers": lifetime["failovers"],
                    "parity_ok": parity_ok,
                }
            )
        finally:
            cluster.close()
    return {
        "chaos": chaos,
        "nodes": NODES,
        "deadline_ms": DEADLINE_SECONDS * 1000.0 if chaos == "latency_spike" else None,
        "spike_ms": SPIKE_SECONDS * 1000.0 if chaos == "latency_spike" else None,
        "points": points,
    }


# ----------------------------------------------------------------------
# section 4: cached DF survival at replicas=1 — the fan-out-tax win
# ----------------------------------------------------------------------
def run_cached_df_survival(queries) -> Dict:
    """Warm the term-stats cache while healthy, kill a node, slice queries.

    A *survivor* query's keywords are absent from every partition the dead
    node hosted: warm, the cached DFs skip round 1 and the zero bounds
    prune the dead partitions before any stream opens, so the query never
    touches the dead node — complete, byte-identical answers at replicas=1.
    The always-scatter router failed 100% of these (round 1 touched every
    partition).  Queries that do consult the dead partitions remain
    degraded, proving the slice split is load-bearing.

    The section builds its own corpus with one rare keyword planted per
    partition (confined to a single cuisine chain): at full scale the
    shared zipf vocabulary spreads every keyword across all partitions, so
    without planting the survivor slice would be empty by construction.
    """
    fragments = synthetic_fragments(min(FRAGMENTS, 2000))
    partitioner = GroupPartitioner(QUERY, NODES)
    group_partition = {
        identifier[0]: partitioner.partition_of(identifier)
        for identifier in fragments
    }
    planted: Dict[int, str] = {}
    for group in sorted(group_partition):
        partition = group_partition[group]
        if partition in planted:
            continue
        keyword = f"survivorperk{partition}"
        planted[partition] = keyword
        for identifier, term_frequencies in fragments.items():
            if identifier[0] == group:
                term_frequencies[keyword] = 2 + partition
        if len(planted) == NODES:
            break
    source_store = InMemoryStore()
    searcher = build_searcher(fragments, source_store)
    plane = FaultPlane(seed=29)
    cluster = SearchCluster.build(
        QUERY, SPEC, URI, source_store,
        nodes=NODES, replicas=1, partitions=NODES,
        fault_plane=plane, degraded_ok=True, breaker_reset_seconds=300.0,
    )
    try:
        router = cluster.router
        victim = cluster.assignment(0).primary
        victim_partitions = {
            partition
            for partition in range(cluster.partition_count)
            if cluster.assignment(partition).primary == victim
        }
        presence: Dict[str, set] = {}
        for identifier, term_frequencies in fragments.items():
            partition = partitioner.partition_of(identifier)
            for keyword in term_frequencies:
                presence.setdefault(keyword, set()).add(partition)
        candidates = [
            (keyword,) for _, keyword in sorted(planted.items())
        ] + list(queries)
        survivors = [
            keywords
            for keywords in candidates
            if not any(
                presence.get(keyword, set()) & victim_partitions
                for keyword in keywords
            )
        ]
        doomed = [keywords for keywords in candidates if keywords not in survivors]
        reference = {
            keywords: as_comparable(
                searcher.search(list(keywords), k=K, size_threshold=SIZE_THRESHOLD)
            )
            for keywords in survivors
        }
        # Warm every slice while the cluster is healthy, then kill.
        for keywords in survivors + doomed:
            router.search_detailed(keywords, k=K, size_threshold=SIZE_THRESHOLD)
        plane.kill_node(victim)

        def slice_sweep(slice_queries, check_parity: bool) -> Dict:
            complete = 0
            parity_ok = True
            for keywords in slice_queries:
                detailed = router.search_detailed(
                    keywords, k=K, size_threshold=SIZE_THRESHOLD
                )
                if detailed.statistics.complete:
                    complete += 1
                if check_parity:
                    parity_ok = parity_ok and (
                        as_comparable(detailed.results) == reference[keywords]
                    )
            total = len(slice_queries)
            return {
                "queries": total,
                "complete": complete,
                "availability_pct": 100.0 * complete / total if total else 0.0,
                "parity_ok": parity_ok,
            }

        survivor_point = slice_sweep(survivors, check_parity=True)
        doomed_point = slice_sweep(doomed, check_parity=False)
        lifetime = router.lifetime_statistics()
        return {
            "replicas": 1,
            "victim": victim,
            "victim_partitions": sorted(victim_partitions),
            "survivor_queries": survivor_point,
            "consulting_queries": doomed_point,
            "df_cache_hits": lifetime["df_cache_hits"],
            "partitions_pruned": lifetime["partitions_pruned"],
            "note": (
                "survivor = no query keyword present in any dead partition; "
                "warm cached DFs + zero bounds mean the query never contacts "
                "the dead node at all"
            ),
        }
    finally:
        cluster.close()


# ----------------------------------------------------------------------
def run_benchmark() -> Dict:
    fragments = synthetic_fragments(FRAGMENTS)
    source_store = InMemoryStore()
    searcher = build_searcher(fragments, source_store)
    workload = zipf_keyword_queries(
        searcher.index.document_frequencies(),
        count=QUERY_COUNT,
        skew=SKEW,
        keywords_per_query=(1, 2),
        seed=47,
    )
    queries = list(workload.unique_queries())
    reference = {
        keywords: as_comparable(
            searcher.search(list(keywords), k=K, size_threshold=SIZE_THRESHOLD)
        )
        for keywords in queries
    }

    overhead = run_zero_fault_overhead(source_store, queries)
    node_kill = run_chaos_sweep(source_store, queries, reference, chaos="node_kill")
    latency_spike = run_chaos_sweep(
        source_store, queries, reference, chaos="latency_spike"
    )
    cached_survival = run_cached_df_survival(queries)

    payload = {
        "fragments": FRAGMENTS,
        "queries": QUERY_COUNT,
        "unique_queries": len(queries),
        "nodes": NODES,
        "zipf_skew": SKEW,
        "k": K,
        "size_threshold": SIZE_THRESHOLD,
        "zero_fault_overhead": overhead,
        "node_kill": node_kill,
        "latency_spike": latency_spike,
        "cached_df_survival": cached_survival,
    }

    print_table(
        ["baseline (s)", "fault stack (s)", "overhead (%)", "noise (%)"],
        [
            (
                round(overhead["baseline_seconds"], 3),
                round(overhead["fault_stack_seconds"], 3),
                round(overhead["overhead_pct"], 2),
                round(overhead["noise_pct"], 2),
            )
        ],
        title=f"zero-fault overhead ({ROUNDS} interleaved rounds, {len(queries)} queries)",
    )
    for section in (node_kill, latency_spike):
        print_table(
            ["replicas", "availability (%)", "partials", "p50 (ms)", "p99 (ms)",
             "failovers", "parity"],
            [
                (
                    p["replicas"],
                    round(p["availability_pct"], 1),
                    p["partial_results"],
                    round(p["p50_latency_ms"], 2),
                    round(p["p99_latency_ms"], 2),
                    p["failovers"],
                    "ok" if p["parity_ok"] else "MISMATCH",
                )
                for p in section["points"]
            ],
            title=f"{section['chaos']} chaos at {NODES} nodes (degraded_ok)",
        )
    print_table(
        ["slice", "queries", "availability (%)", "parity"],
        [
            (
                "survivor (dead partitions not consulted)",
                cached_survival["survivor_queries"]["queries"],
                round(cached_survival["survivor_queries"]["availability_pct"], 1),
                "ok" if cached_survival["survivor_queries"]["parity_ok"] else "MISMATCH",
            ),
            (
                "consulting dead partitions",
                cached_survival["consulting_queries"]["queries"],
                round(cached_survival["consulting_queries"]["availability_pct"], 1),
                "-",
            ),
        ],
        title="cached-DF survival at replicas=1 (warm term-stats cache, node killed)",
    )

    path = write_json("BENCH_fault_tolerance.json", payload)
    print(f"\nwrote {path}")
    return payload


def test_fault_tolerance_benchmark(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)

    # recoverable chaos (replicas=2) is invisible: byte parity, zero
    # partial results, full availability — under both chaos modes
    for section in (payload["node_kill"], payload["latency_spike"]):
        replicated = next(p for p in section["points"] if p["replicas"] == 2)
        assert replicated["parity_ok"], section
        assert replicated["partial_results"] == 0, section
        assert replicated["availability_pct"] == 100.0, section
        assert replicated["failovers"] > 0, section
    # unrecoverable node kill (replicas=1) degrades gracefully: the sweep
    # still answers every query, flagging the lost partition's share
    solo = next(p for p in payload["node_kill"]["points"] if p["replicas"] == 1)
    assert solo["partial_results"] > 0, solo
    assert solo["availability_pct"] < 100.0, solo
    # cached-DF survival: with a warm term-stats cache at replicas=1,
    # queries that never consult the dead partitions answer complete and
    # byte-identical — availability > 0% where always-scatter recorded 0%
    survival = payload["cached_df_survival"]
    survivor_slice = survival["survivor_queries"]
    assert survivor_slice["queries"] > 0, survival
    assert survivor_slice["availability_pct"] == 100.0, survival
    assert survivor_slice["parity_ok"], survival
    # acceptance: <= 5% zero-fault routing overhead beyond measurement
    # noise (the same-config calibration disparity — on shared hardware two
    # identical runs already differ by several percent, and the fault stack
    # only fails this gate if it is slower than that residual explains).
    # The floor only binds at full scale: on tiny smoke corpora fixed
    # per-query costs dominate.
    if FRAGMENTS >= 3000:
        overhead = payload["zero_fault_overhead"]
        assert (
            overhead["overhead_pct"] <= OVERHEAD_FLOOR_PCT + overhead["noise_pct"]
        ), overhead


if __name__ == "__main__":
    run_benchmark()
