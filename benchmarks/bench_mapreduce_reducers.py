"""Figure 10 discussion: impact of reduce-side parallelism.

The paper examines the impact of the number of nodes used for reduce tasks on
a fixed cluster and finds only a 3–8 % difference, because most jobs are map /
I/O bound (map-task placement follows the number of file blocks).  This
benchmark re-runs the Q2/small integrated crawl with 2, 4 and 8 reduce tasks
on the fixed 4-node cluster and checks the analogous qualitative claim: the
elapsed time changes far less than proportionally to the reduce-side
parallelism (quadrupling the reduce tasks buys nowhere near a 4x speed-up),
and the produced fragment index is identical regardless.
"""

import pytest

from repro.bench.harness import run_crawl
from repro.bench.reporting import print_table

REDUCER_COUNTS = (2, 4, 8)


def test_reduce_task_count_has_minor_impact(benchmark, crawl_cache, tpch_databases, tpch_query_sets):
    def collect():
        return {
            reducers: run_crawl(
                crawl_cache, tpch_databases, tpch_query_sets, "small", "Q2", "integrated",
                num_reducers=reducers,
            )
            for reducers in REDUCER_COUNTS
        }

    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [
        (reducers, round(result.simulated_seconds(), 2), result.fragment_count)
        for reducers, result in sorted(results.items())
    ]
    print_table(
        ["reduce tasks", "simulated s", "fragments"],
        rows,
        title="Reduce-task scaling (Q2, small, integrated)",
    )

    times = [result.simulated_seconds() for result in results.values()]
    spread = (max(times) - min(times)) / max(times)
    benchmark.extra_info["relative_spread"] = round(spread, 3)
    # The paper reports only a 3-8% difference when adding reduce nodes.  Our
    # simulated cluster is more sensitive at laptop scale (the consolidation
    # reduce is a bigger share of a much smaller job), so the reproduced claim
    # is the qualitative one: a 4x change in reduce-side parallelism changes
    # the elapsed time by well under 4x (and under ~45% overall spread).
    assert spread < 0.45
    slowest = max(times)
    fastest = min(times)
    assert slowest / fastest < 2.0

    baseline_index = dict(results[4].index.iter_items())
    for result in results.values():
        assert dict(result.index.iter_items()) == baseline_index
