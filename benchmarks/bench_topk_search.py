"""Figure 11: top-k search performance (Q2, medium dataset).

The paper measures the average elapsed time of top-k searches over the
fragment index built for Q2 on the medium dataset, varying

* the keyword temperature (cold / warm / hot, i.e. bottom / middle / top 10 %
  of the document-frequency ranking, 30 keywords per group),
* the requested number of result db-pages k ∈ {1, 5, 10, 20}, and
* the db-page size threshold s ∈ {100, 200, 500, 1000},

and reports sub-millisecond search times that grow from cold to hot keywords,
with s mattering more for warm/hot keywords than for cold ones.
"""

import pytest

from repro.bench.reporting import print_table
from repro.bench.settings import K_VALUES, KEYWORD_TEMPERATURES, SIZE_THRESHOLDS
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import fragment_sizes
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.workloads import select_keyword_workloads
from repro.webapp.request import QueryStringSpec


@pytest.fixture(scope="module")
def searcher_and_workloads(tpch_query_sets, medium_q2_fragments):
    """A searcher over the Q2/medium fragment index plus the keyword workloads."""
    query = tpch_query_sets["medium"]["Q2"]
    index = InvertedFragmentIndex.from_fragments(medium_q2_fragments)
    graph = FragmentGraph.build(query, fragment_sizes(medium_q2_fragments))
    spec = QueryStringSpec((("r", "r"), ("lo", "min"), ("hi", "max")))
    searcher = TopKSearcher(index, graph, UrlFormulator(query, spec, "shop.example.com/Orders"))
    workloads = select_keyword_workloads(index.document_frequencies(), group_size=30)
    return searcher, workloads


CASES = [
    (temperature, k, s)
    for temperature in KEYWORD_TEMPERATURES
    for k in K_VALUES
    for s in SIZE_THRESHOLDS
]


@pytest.mark.parametrize("temperature,k,s", CASES,
                         ids=[f"{t}-k{k}-s{s}" for t, k, s in CASES])
def test_figure11_topk_search(benchmark, searcher_and_workloads, temperature, k, s):
    searcher, workloads = searcher_and_workloads
    keywords = list(workloads[temperature])

    def run_group():
        """One pass over the 30 keywords of the group (one search each)."""
        total_results = 0
        for keyword in keywords:
            total_results += len(searcher.search([keyword], k=k, size_threshold=s))
        return total_results

    total_results = benchmark(run_group)
    try:
        group_mean_s = benchmark.stats.stats.mean
    except AttributeError:  # pragma: no cover - older pytest-benchmark API
        import time

        started = time.perf_counter()
        run_group()
        group_mean_s = time.perf_counter() - started
    per_search_ms = group_mean_s * 1000.0 / max(len(keywords), 1)
    benchmark.extra_info.update(
        {"temperature": temperature, "k": k, "s": s,
         "avg_search_ms": round(per_search_ms, 4), "results": total_results}
    )
    print_table(
        ["terms", "k", "s", "avg search time (ms)", "total results"],
        [(temperature, k, s, round(per_search_ms, 4), total_results)],
        title="Figure 11 data point",
    )
    if temperature != "cold":
        assert total_results > 0


def test_figure11_summary_and_claims(benchmark, searcher_and_workloads):
    """Prints the whole Figure 11 grid and checks the qualitative claims."""
    searcher, workloads = searcher_and_workloads

    def measure_all():
        import time

        grid = {}
        for temperature in KEYWORD_TEMPERATURES:
            keywords = list(workloads[temperature])
            for k in K_VALUES:
                for s in SIZE_THRESHOLDS:
                    started = time.perf_counter()
                    for keyword in keywords:
                        searcher.search([keyword], k=k, size_threshold=s)
                    elapsed = time.perf_counter() - started
                    grid[(temperature, k, s)] = elapsed * 1000.0 / len(keywords)
        return grid

    grid = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    rows = []
    for temperature in KEYWORD_TEMPERATURES:
        for k in K_VALUES:
            rows.append(
                (temperature, k, *[round(grid[(temperature, k, s)], 4) for s in SIZE_THRESHOLDS])
            )
    print_table(
        ["terms", "k", *[f"s={s} (ms)" for s in SIZE_THRESHOLDS]],
        rows,
        title="Figure 11 (reproduced): average top-k search time in milliseconds",
    )

    def average_for(temperature):
        values = [grid[(temperature, k, s)] for k in K_VALUES for s in SIZE_THRESHOLDS]
        return sum(values) / len(values)

    # Claim 1: searches are fast (the paper reports < 0.3 ms on its index; we
    # only require the same order of magnitude on the laptop-scale index).
    assert max(grid.values()) < 50.0
    # Claim 2: hot keywords cost more than cold keywords on average.
    assert average_for("hot") > average_for("cold")
    # Claim 3: for hot keywords the size threshold matters (larger s means more
    # expansion work), while cold keywords are largely insensitive to s.
    hot_small_s = sum(grid[("hot", k, 100)] for k in K_VALUES)
    hot_large_s = sum(grid[("hot", k, 1000)] for k in K_VALUES)
    assert hot_large_s >= hot_small_s * 0.8
