"""Figure 10: database crawling and fragment indexing performance.

The paper's Figure 10 plots the elapsed time of the stepwise (SW) and the
integrated (INT) algorithms for Q1/Q2/Q3 on the small/medium/large datasets,
broken down into the per-stage bars SW-Jn/SW-Grp/SW-Idx and
INT-Jn/INT-Ext/INT-Cnsd.

Each benchmark below runs one (dataset, query, algorithm) crawl on the
simulated 4-node cluster, records the wall-clock time of the in-process run
(pytest-benchmark's number) and prints the *simulated* cluster elapsed time
per stage — the quantity comparable to the paper's bars.  A final summary test
prints the whole figure as a table and checks the qualitative claims:

* elapsed time grows steeply with the dataset size;
* INT beats SW for the large-operand queries (Q2, Q3), with the gap growing
  with dataset size;
* SW can win only when the operand relations are very small (Q1).
"""

import pytest

from repro.bench.harness import run_crawl
from repro.bench.reporting import print_table

CASES = [
    (scale, query, algorithm)
    for scale in ("small", "medium", "large")
    for query in ("Q1", "Q2", "Q3")
    for algorithm in ("stepwise", "integrated")
]

_STAGE_LABELS = {
    "stepwise": [("join", "SW-Jn"), ("group", "SW-Grp"), ("index", "SW-Idx")],
    "integrated": [("join", "INT-Jn"), ("extract", "INT-Ext"), ("consolidate", "INT-Cnsd")],
}


@pytest.mark.parametrize("scale,query,algorithm", CASES,
                         ids=[f"{s}-{q}-{a}" for s, q, a in CASES])
def test_figure10_crawling_and_indexing(benchmark, crawl_cache, tpch_databases,
                                        tpch_query_sets, scale, query, algorithm):
    result = benchmark.pedantic(
        run_crawl,
        args=(crawl_cache, tpch_databases, tpch_query_sets, scale, query, algorithm),
        rounds=1,
        iterations=1,
    )
    stages = result.stage_seconds()
    labelled = {label: round(stages.get(stage, 0.0), 2) for stage, label in _STAGE_LABELS[algorithm]}
    benchmark.extra_info.update(
        {
            "simulated_seconds": round(result.simulated_seconds(), 2),
            "fragments": result.fragment_count,
            "shuffle_mb": round(result.metrics.total_shuffle_bytes / 1e6, 2),
            **labelled,
        }
    )
    print_table(
        ["dataset", "query", "algorithm", "simulated s", *labelled.keys(), "shuffle MB", "fragments"],
        [(scale, query, algorithm.upper()[:3], round(result.simulated_seconds(), 2),
          *labelled.values(), round(result.metrics.total_shuffle_bytes / 1e6, 2),
          result.fragment_count)],
        title="Figure 10 data point",
    )
    assert result.fragment_count > 0


def test_figure10_summary_and_claims(benchmark, crawl_cache, tpch_databases, tpch_query_sets):
    """Prints the full Figure 10 table and checks the paper's qualitative claims."""

    def collect():
        table = {}
        for scale in ("small", "medium", "large"):
            for query in ("Q1", "Q2", "Q3"):
                for algorithm in ("stepwise", "integrated"):
                    result = run_crawl(
                        crawl_cache, tpch_databases, tpch_query_sets, scale, query, algorithm
                    )
                    table[(scale, query, algorithm)] = result
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for scale in ("small", "medium", "large"):
        for query in ("Q1", "Q2", "Q3"):
            stepwise = table[(scale, query, "stepwise")]
            integrated = table[(scale, query, "integrated")]
            saving = 100.0 * (
                1.0 - integrated.simulated_seconds() / stepwise.simulated_seconds()
            )
            rows.append(
                (
                    scale,
                    query,
                    round(stepwise.simulated_seconds(), 1),
                    round(integrated.simulated_seconds(), 1),
                    round(saving, 1),
                    round(stepwise.metrics.total_shuffle_bytes / 1e6, 2),
                    round(integrated.metrics.total_shuffle_bytes / 1e6, 2),
                    integrated.fragment_count,
                )
            )
    print_table(
        ["dataset", "query", "SW sim s", "INT sim s", "INT saving %",
         "SW shuffle MB", "INT shuffle MB", "fragments"],
        rows,
        title="Figure 10 (reproduced): database crawling and fragment indexing",
    )

    # Claim 1: elapsed time grows steeply with dataset size (per query/algorithm).
    for query in ("Q1", "Q2", "Q3"):
        for algorithm in ("stepwise", "integrated"):
            small = table[("small", query, algorithm)].simulated_seconds()
            large = table[("large", query, algorithm)].simulated_seconds()
            assert large > small

    # Claim 2: INT outperforms SW on the large-operand queries at medium/large,
    # and its join stage always moves less data than SW's.
    for scale in ("medium", "large"):
        for query in ("Q2", "Q3"):
            stepwise = table[(scale, query, "stepwise")]
            integrated = table[(scale, query, "integrated")]
            assert integrated.simulated_seconds() < stepwise.simulated_seconds()
            assert (
                integrated.metrics.stage_shuffle_bytes()["join"]
                < stepwise.metrics.stage_shuffle_bytes()["join"]
            )

    # Claim 3: SW is competitive only when the operand relations are tiny (Q1).
    q1_small_sw = table[("small", "Q1", "stepwise")].simulated_seconds()
    q1_small_int = table[("small", "Q1", "integrated")].simulated_seconds()
    assert q1_small_sw <= q1_small_int
