"""Extension benchmark: incremental fragment-index maintenance vs full rebuild.

Section VIII names efficient fragment-index maintenance under database updates
as future work ("it should be very costly to rebuild the entire fragment
index").  The repository implements the incremental maintainer
(:mod:`repro.core.incremental`); this benchmark quantifies the claim by
applying a batch of record insertions to a TPC-H slice and comparing the
incremental maintenance cost against rebuilding the fragment index and graph
from scratch after every update.
"""

import time

import pytest

from repro.bench.reporting import print_table
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import derive_fragments, fragment_sizes
from repro.core.incremental import IncrementalMaintainer
from repro.datasets.tpch import TpchScale, build_tpch, tpch_queries

UPDATES = 20


def _build_state():
    tier = TpchScale("incremental", customers=40, orders_per_customer=6,
                     lineitems_per_order=3, parts=100, quantity_values=10)
    database = build_tpch(tier)
    query = tpch_queries(database)["Q2"]
    fragments = derive_fragments(query, database)
    index = InvertedFragmentIndex.from_fragments(fragments)
    graph = FragmentGraph.build(query, fragment_sizes(fragments))
    return database, query, index, graph


def _new_lineitems(count):
    """New lineitem rows attached to existing orders (so they join into pages)."""
    lineitems = []
    for offset in range(count):
        order_key = offset + 1
        lineitems.append(
            ("lineitem", (order_key, 90 + offset, (offset % 100) + 1, (offset % 10) + 1,
                          1234.5 + offset, "N", "1997-06-14", "DELIVER IN PERSON", "TRUCK",
                          "special incremental deposits haggle"))
        )
    return lineitems


def test_incremental_maintenance_vs_full_rebuild(benchmark):
    database, query, index, graph, = _build_state()
    maintainer = IncrementalMaintainer(query, database, index, graph)
    updates = _new_lineitems(UPDATES)

    def apply_incrementally():
        for relation_name, record in updates:
            maintainer.insert(relation_name, record)
        return maintainer.fragments_touched

    touched = benchmark.pedantic(apply_incrementally, rounds=1, iterations=1)
    incremental_seconds = benchmark.stats.stats.mean if hasattr(benchmark.stats, "stats") else None

    # Full-rebuild comparison: apply the same updates to a fresh copy, timing a
    # complete re-derivation + re-index + re-graph after every update.
    rebuild_database, rebuild_query, _index, _graph = _build_state()
    started = time.perf_counter()
    for relation_name, record in updates:
        rebuild_database.insert(relation_name, record)
        fragments = derive_fragments(rebuild_query, rebuild_database)
        InvertedFragmentIndex.from_fragments(fragments)
        FragmentGraph.build(rebuild_query, fragment_sizes(fragments))
    rebuild_seconds = time.perf_counter() - started

    rows = [
        ("incremental maintenance", round(incremental_seconds or 0.0, 3), touched),
        ("full rebuild per update", round(rebuild_seconds, 3),
         len(derive_fragments(rebuild_query, rebuild_database)) * UPDATES),
    ]
    print_table(
        ["strategy", "seconds for %d updates" % UPDATES, "fragments touched"],
        rows,
        title="Incremental fragment-index maintenance vs full rebuild",
    )

    # The incremental path must touch far fewer fragments than rebuild-everything,
    # and (when timing data is available) be substantially faster.
    assert touched < len(derive_fragments(rebuild_query, rebuild_database)) * UPDATES / 5
    if incremental_seconds is not None:
        assert incremental_seconds < rebuild_seconds

    # Correctness: the maintained index equals a from-scratch rebuild.
    final_reference = InvertedFragmentIndex.from_fragments(derive_fragments(query, database))
    assert dict(index.iter_items()) == dict(final_reference.iter_items())
