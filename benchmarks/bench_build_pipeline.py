"""Distributed build pipeline: batch crawl→index throughput at 100k fragments.

Builds the synthetic corpus (:class:`repro.datasets.SyntheticCorpus`) at
increasing scales and measures, per scale,

* ``single``      — the single-process reference build: per-fragment
                    ``InvertedFragmentIndex.add_fragment`` into one
                    :class:`DiskStore` plus one ``finalize()`` (the blessed
                    pre-pipeline path),
* ``distributed`` — :class:`repro.build.BuildPipeline` into a fresh
                    :class:`DiskStore`: partitioned map tasks, sorted-run
                    reduce tasks, parallel per-shard bulk loads and the final
                    merge,

verifies the two stores are **byte-identical** (posting blocks and fragment
rows — the ``parity_ok`` flag ``tools/check_bench_parity.py`` gates CI on),
and, on the largest corpus, measures end-to-end top-k search latency over a
document-frequency workload (hot / warm / cold / mixed keywords) against the
distributed build.  Emits ``BENCH_build_pipeline.json``.

Run under pytest (``PYTHONPATH=src python -m pytest benchmarks/bench_build_pipeline.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_build_pipeline.py``).

Environment knobs: ``REPRO_BENCH_BUILD_FRAGMENTS`` (comma-separated corpus
sizes, default ``2000,20000,100000``), ``REPRO_BENCH_BUILD_WORKERS``
(pipeline workers, default 2), ``REPRO_BENCH_BUILD_MAP_TASKS`` /
``REPRO_BENCH_BUILD_REDUCE_TASKS`` (default 4 each),
``REPRO_BENCH_BUILD_SEARCH_REPEATS`` (latency samples per query, default 20).
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Tuple

from repro.bench.reporting import print_table, summarize_latencies, write_json
from repro.build import BuildPipeline
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets import SyntheticCorpus
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.store import DiskStore
from repro.webapp.request import QueryStringSpec

FRAGMENT_COUNTS = tuple(
    int(value)
    for value in os.environ.get(
        "REPRO_BENCH_BUILD_FRAGMENTS", "2000,20000,100000"
    ).split(",")
)
WORKERS = int(os.environ.get("REPRO_BENCH_BUILD_WORKERS", "2"))
MAP_TASKS = int(os.environ.get("REPRO_BENCH_BUILD_MAP_TASKS", "4"))
REDUCE_TASKS = int(os.environ.get("REPRO_BENCH_BUILD_REDUCE_TASKS", "4"))
SEARCH_REPEATS = int(os.environ.get("REPRO_BENCH_BUILD_SEARCH_REPEATS", "20"))
K = 10
SIZE_THRESHOLD = 200

QUERY = fooddb_search_query(build_fooddb())
SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
URI = "www.example.com/Search"


def _index_rows(store: DiskStore) -> Tuple[List, List]:
    """The parity material: every posting block and fragment row, bytes included."""
    blocks = store._connection.execute(
        "SELECT keyword, block_no, count, max_occurrences, max_weight, entries "
        "FROM posting_blocks ORDER BY keyword, block_no"
    ).fetchall()
    fragments = store._connection.execute(
        "SELECT id, size FROM fragments ORDER BY id"
    ).fetchall()
    return blocks, fragments


def build_single(corpus: SyntheticCorpus, path: str) -> Tuple[DiskStore, float]:
    started = time.perf_counter()
    store = DiskStore(path)
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in corpus:
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    return store, time.perf_counter() - started


def build_distributed(corpus: SyntheticCorpus, path: str):
    started = time.perf_counter()
    store = DiskStore(path)
    report = BuildPipeline(
        corpus, map_tasks=MAP_TASKS, reduce_tasks=REDUCE_TASKS, workers=WORKERS
    ).run(store)
    return store, time.perf_counter() - started, report


def query_workload(store: DiskStore) -> Dict[str, List[str]]:
    """Hot / warm / cold keywords by document frequency, plus the mixed query."""
    index = InvertedFragmentIndex(store=store)
    frequencies = index.document_frequencies()
    ranked = sorted(frequencies, key=lambda keyword: (frequencies[keyword], keyword))
    workload = {
        "cold": [ranked[0]],
        "warm": [ranked[len(ranked) // 2]],
        "hot": [ranked[-1]],
    }
    workload["mixed"] = [ranked[-1], ranked[len(ranked) // 2], ranked[0]]
    return workload


def measure_search(store: DiskStore, fragments: int) -> List[Dict]:
    """End-to-end top-k latency on the distributed build (graph included)."""
    index = InvertedFragmentIndex(store=store)
    sizes = index.fragment_sizes
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    searcher = TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))
    measurements = []
    for name, keywords in query_workload(store).items():
        searcher.search(keywords, k=K, size_threshold=SIZE_THRESHOLD)  # warm-up
        samples = []
        for _ in range(SEARCH_REPEATS):
            started = time.perf_counter()
            searcher.search(keywords, k=K, size_threshold=SIZE_THRESHOLD)
            samples.append(time.perf_counter() - started)
        measurements.append(
            {"fragments": fragments, "query": name, "keywords": keywords,
             **summarize_latencies(samples)}
        )
    return measurements


def run_build_comparison() -> Dict:
    payload = {
        "fragment_counts": list(FRAGMENT_COUNTS),
        "workers": WORKERS,
        "map_tasks": MAP_TASKS,
        "reduce_tasks": REDUCE_TASKS,
        "search_repeats": SEARCH_REPEATS,
        "measurements": [],
        "search_latency": [],
    }
    rows = []
    largest = max(FRAGMENT_COUNTS)
    for count in FRAGMENT_COUNTS:
        corpus = SyntheticCorpus(count, seed=7)
        with tempfile.TemporaryDirectory(prefix="repro-bench-build-") as scratch:
            single_store, single_seconds = build_single(
                corpus, os.path.join(scratch, "single.sqlite")
            )
            distributed_store, distributed_seconds, report = build_distributed(
                corpus, os.path.join(scratch, "distributed.sqlite")
            )
            parity_ok = _index_rows(single_store) == _index_rows(distributed_store)
            single_store.close()
            speedup = single_seconds / distributed_seconds if distributed_seconds else 0.0
            measurement = {
                "fragments": count,
                "single_seconds": round(single_seconds, 3),
                "single_fragments_per_second": round(count / single_seconds, 1),
                "distributed_seconds": round(distributed_seconds, 3),
                "distributed_fragments_per_second": round(
                    count / distributed_seconds, 1
                ),
                "speedup_vs_single": round(speedup, 2),
                "workers": WORKERS,
                "map_tasks": MAP_TASKS,
                "reduce_tasks": REDUCE_TASKS,
                "postings": report.postings,
                "keywords": report.keywords,
                "stage_seconds": {
                    "map": round(report.map_seconds, 3),
                    "reduce": round(report.reduce_seconds, 3),
                    "load": round(report.load_seconds, 3),
                    "merge": round(report.merge_seconds, 3),
                },
                "retries": dict(report.retries),
                "parity_ok": parity_ok,
            }
            payload["measurements"].append(measurement)
            rows.append(
                (count, round(single_seconds, 2), round(distributed_seconds, 2),
                 f"{speedup:.2f}x",
                 measurement["distributed_fragments_per_second"],
                 "yes" if parity_ok else "NO")
            )
            if count == largest:
                payload["search_latency"].extend(
                    measure_search(distributed_store, count)
                )
            distributed_store.close()
    print_table(
        ["fragments", "single (s)", "distributed (s)", "speedup",
         "dist fragments/s", "byte parity"],
        rows,
        title=f"Batch build: single-process vs distributed pipeline "
        f"({WORKERS} workers, {MAP_TASKS} map / {REDUCE_TASKS} reduce tasks)",
    )
    print_table(
        ["fragments", "query", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        [
            (entry["fragments"], entry["query"], entry["mean_ms"],
             entry["p50_ms"], entry["p95_ms"], entry["p99_ms"])
            for entry in payload["search_latency"]
        ],
        title="Top-k search latency on the distributed build (largest corpus)",
    )
    path = write_json("BENCH_build_pipeline.json", payload)
    print(f"\nwrote {path}")
    return payload


def test_build_pipeline_benchmark(benchmark):
    payload = benchmark.pedantic(run_build_comparison, rounds=1, iterations=1)
    # Every scale must verify byte-identical output.
    assert all(m["parity_ok"] for m in payload["measurements"])
    # The distributed pipeline must beat the single-process build wall-clock
    # at 20k+ fragments with >= 2 workers (the acceptance criterion; smaller
    # smoke scales are exempt — fixed stage overhead dominates there).
    if WORKERS >= 2:
        for measurement in payload["measurements"]:
            if measurement["fragments"] >= 20000:
                assert measurement["speedup_vs_single"] > 1.0, measurement
    # The largest corpus answered the search workload.
    assert payload["search_latency"], "no search-latency rows recorded"
    for entry in payload["search_latency"]:
        assert entry["requests"] == SEARCH_REPEATS
        assert entry["p95_ms"] >= entry["p50_ms"] >= 0.0


if __name__ == "__main__":
    run_build_comparison()
