"""Table II and Table III: the evaluation datasets and application queries.

Table II of the paper lists the sizes of the operand relations in the three
TPC-H datasets; Table III lists the three application queries.  These
benchmarks regenerate both: dataset construction is timed, and the resulting
per-relation sizes / parsed query structures are printed in the paper's
format.
"""

import pytest

from repro.bench.reporting import print_table
from repro.datasets.tpch import SCALES, TPCH_QUERY_SQL, build_tpch
from repro.db.sqlparse import parse_psj_query


@pytest.mark.parametrize("scale", ["small", "medium", "large"])
def test_table2_dataset_sizes(benchmark, settings, scale):
    """Table II: operand-relation sizes of the small/medium/large datasets."""
    tier = SCALES[scale]
    if settings.dataset_scale != 1.0:
        tier = tier.scaled(settings.dataset_scale)

    database = benchmark.pedantic(build_tpch, args=(tier,), rounds=1, iterations=1)

    report = database.size_report()
    rows = [
        (
            scale,
            *[report[name]["records"] for name in ("region", "nation", "customer", "orders", "lineitem", "part")],
            *[round(report[name]["approx_bytes"] / 1024, 1) for name in ("customer", "orders", "lineitem")],
        )
    ]
    print_table(
        ["dataset", "R rows", "N rows", "C rows", "O rows", "L rows", "P rows",
         "C KB", "O KB", "L KB"],
        rows,
        title=f"Table II (reproduced, laptop scale): dataset {scale}",
    )
    benchmark.extra_info["records"] = database.total_records()

    # The paper's ~1:5:10 relative sizing must hold between the tiers.
    assert report["lineitem"]["records"] > 0


def test_table3_application_queries(benchmark, tpch_databases):
    """Table III: the three parameterized application queries Q1, Q2, Q3."""
    database = tpch_databases["small"]

    def parse_all():
        return {name: parse_psj_query(sql, database, name=name) for name, sql in TPCH_QUERY_SQL.items()}

    queries = benchmark(parse_all)

    rows = []
    for name, query in sorted(queries.items()):
        rows.append(
            (
                name,
                " JOIN ".join(query.operand_relations),
                ", ".join(query.selection_attributes),
                ", ".join(f"${p}" for p in query.parameters()),
            )
        )
    print_table(["query", "operand relations", "selection attributes", "parameters"], rows,
                title="Table III (reproduced): application queries")

    assert set(queries) == {"Q1", "Q2", "Q3"}
    for query in queries.values():
        assert query.parameters() == ("r", "min", "max")
