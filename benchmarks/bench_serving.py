"""Serving-layer benchmark: the cached, concurrent SearchService under load.

Drives :class:`~repro.serving.SearchService` with Zipf-skewed keyword-query
streams (:func:`repro.datasets.workloads.zipf_keyword_queries`) and measures
the three things a query frontend is judged by:

1. **Cache effectiveness** — per-request latency distributions (p50/p95/p99)
   of the uncached ``TopKSearcher.search`` baseline vs. a cold-cache and a
   hot-cache service pass, on the in-memory and the sharded backend.  Every
   service answer is checked byte-identical to the uncached baseline.
2. **Worker scaling** — ``search_many`` throughput at 1/2/4 workers over a
   store whose reads block (:class:`BlockingReadStore`, emulating the remote
   shard / disk round-trips of a deployed backend, where thread concurrency
   actually overlaps waiting).
3. **Mixed search + maintenance** — a hot cache over fooddb, interleaved with
   ``IncrementalMaintainer`` updates: epoch-based invalidation must drop every
   query whose dependencies were touched (each recomputed answer is verified
   against a fresh search) while queries the updates did not touch keep
   hitting.  fooddb is tiny and hub-heavy, so most queries there genuinely
   depend on the updated fragments; the retained-hit count reports how many
   did not.

Run under pytest (``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_serving.py``); emits
``BENCH_serving.json``.

Environment knobs: ``REPRO_BENCH_SERVING_FRAGMENTS`` (synthetic fragment
count, default 4000), ``REPRO_BENCH_SERVING_QUERIES`` (stream length, default
240), ``REPRO_BENCH_SERVING_SKEW`` (Zipf skew, default 1.1),
``REPRO_BENCH_SERVING_DELAY_US`` (blocked-read latency in microseconds for
the scaling section, default 150), ``REPRO_BENCH_SERVING_WORKERS``
(comma-separated worker counts, default ``1,2,4``).
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List, Tuple

from repro.bench.reporting import print_table, summarize_latencies, write_json
from repro.core.engine import DashEngine
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.incremental import IncrementalMaintainer
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.datasets.workloads import zipf_keyword_queries
from repro.serving import SearchService
from repro.store import InMemoryStore, ShardedStore
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec

# The synthetic workload (fooddb-shaped fragment sets: cuisine chains, mixed
# vocabulary, planted hot keywords) is shared with the store-backend
# benchmark so the two benchmarks' numbers stay comparable.
from bench_store_backends import HOT_KEYWORDS, QUERY, SPEC, URI, synthetic_fragments

FRAGMENTS = int(os.environ.get("REPRO_BENCH_SERVING_FRAGMENTS", "4000"))
QUERY_COUNT = int(os.environ.get("REPRO_BENCH_SERVING_QUERIES", "240"))
SKEW = float(os.environ.get("REPRO_BENCH_SERVING_SKEW", "1.1"))
DELAY_SECONDS = int(os.environ.get("REPRO_BENCH_SERVING_DELAY_US", "150")) / 1_000_000.0
WORKER_COUNTS = tuple(
    int(value) for value in os.environ.get("REPRO_BENCH_SERVING_WORKERS", "1,2,4").split(",")
)
K = 10
SIZE_THRESHOLD = 200


class BlockingReadStore(InMemoryStore):
    """An in-memory store whose hot-path reads block for a fixed latency.

    Emulates the backend of a deployed search tier — remote shards, disk —
    where each postings/size/adjacency lookup is a round-trip.  Thread-pool
    concurrency overlaps those waits, which is what the worker-scaling
    section measures (pure in-memory reads are GIL-bound and cannot scale).
    """

    def __init__(self, delay_seconds: float) -> None:
        super().__init__()
        self.delay_seconds = delay_seconds
        self.blocked_reads = 0

    def _block(self) -> None:
        self.blocked_reads += 1
        time.sleep(self.delay_seconds)

    def postings(self, keyword):
        self._block()
        return super().postings(keyword)

    def fragment_sizes_for(self, identifiers):
        self._block()
        return super().fragment_sizes_for(identifiers)

    def fragment_size(self, identifier):
        self._block()
        return super().fragment_size(identifier)

    def neighbors(self, identifier):
        self._block()
        return super().neighbors(identifier)


# ----------------------------------------------------------------------
def build_searcher(fragments, store) -> TopKSearcher:
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    sizes = {identifier: index.fragment_size(identifier) for identifier in fragments}
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    return TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))


def as_comparable(results) -> List[Tuple]:
    return [(r.url, r.score, r.fragments, r.size) for r in results]


# ----------------------------------------------------------------------
# section 1: uncached vs cold vs hot cache
# ----------------------------------------------------------------------
def run_cache_comparison(fragments, workload) -> List[Dict]:
    measurements = []
    for backend, store_factory in (
        ("memory", InMemoryStore),
        ("sharded-4", lambda: ShardedStore(shards=4)),
    ):
        searcher = build_searcher(fragments, store_factory())
        reference: Dict[Tuple[str, ...], List[Tuple]] = {}
        uncached: List[float] = []
        for keywords in workload:
            started = time.perf_counter()
            results = searcher.search(keywords, k=K, size_threshold=SIZE_THRESHOLD)
            uncached.append(time.perf_counter() - started)
            reference.setdefault(keywords, as_comparable(results))

        service = SearchService(searcher, cache_size=4096, workers=1)
        parity_ok = True
        cold: List[float] = []
        for keywords in workload:
            started = time.perf_counter()
            served = service.search(keywords, k=K, size_threshold=SIZE_THRESHOLD)
            cold.append(time.perf_counter() - started)
            parity_ok = parity_ok and as_comparable(served.results) == reference[keywords]
        hot: List[float] = []
        hot_hits = 0
        for keywords in workload:
            started = time.perf_counter()
            served = service.search(keywords, k=K, size_threshold=SIZE_THRESHOLD)
            hot.append(time.perf_counter() - started)
            hot_hits += 1 if served.cached else 0
            parity_ok = parity_ok and as_comparable(served.results) == reference[keywords]

        summary_uncached = summarize_latencies(uncached)
        summary_cold = summarize_latencies(cold)
        summary_hot = summarize_latencies(hot)
        measurements.append(
            {
                "backend": backend,
                "uncached": summary_uncached,
                "cold_cache": summary_cold,
                "hot_cache": summary_hot,
                "hot_hit_rate": hot_hits / len(workload),
                "hot_speedup_vs_uncached": summary_uncached["mean_ms"] / summary_hot["mean_ms"],
                "cold_speedup_vs_uncached": summary_uncached["mean_ms"] / summary_cold["mean_ms"],
                "parity_ok": parity_ok,
            }
        )
        service.close()
    return measurements


# ----------------------------------------------------------------------
# section 2: worker scaling over a blocking-read store
# ----------------------------------------------------------------------
def run_worker_scaling(fragments, workload) -> Dict:
    unique_queries = list(workload.unique_queries())[:120]
    points = []
    for workers in WORKER_COUNTS:
        searcher = build_searcher(fragments, BlockingReadStore(DELAY_SECONDS))
        service = SearchService(searcher, cache_size=0, workers=workers)
        started = time.perf_counter()
        batch = service.search_many(unique_queries, k=K, size_threshold=SIZE_THRESHOLD)
        elapsed = time.perf_counter() - started
        assert len(batch) == len(unique_queries)
        points.append(
            {
                "workers": workers,
                "queries": len(unique_queries),
                "elapsed_seconds": elapsed,
                "throughput_qps": len(unique_queries) / elapsed,
            }
        )
        service.close()
    base = points[0]["throughput_qps"]
    for point in points:
        point["speedup_vs_1_worker"] = point["throughput_qps"] / base
    return {
        "read_delay_us": DELAY_SECONDS * 1_000_000.0,
        "note": "reads block (simulated remote shards); threads overlap the waits",
        "points": points,
    }


# ----------------------------------------------------------------------
# section 3: mixed search + maintenance over fooddb
# ----------------------------------------------------------------------
def run_mixed_maintenance() -> Dict:
    database = build_fooddb()
    application = WebApplication(
        name="Search", uri=URI, query=fooddb_search_query(database), query_string_spec=SPEC
    )
    engine = DashEngine.build(application, database, algorithm="integrated", analyze_source=False)
    service = engine.serving(cache_size=256, workers=1, default_k=5, default_size_threshold=20)
    maintainer = IncrementalMaintainer(
        engine.application.query, database, engine.index, engine.graph
    )

    workload = zipf_keyword_queries(
        engine.index.document_frequencies(), count=80, skew=SKEW, keywords_per_query=(1, 2), seed=23
    )
    service.search_many(list(workload))  # populate
    before = service.statistics()

    maintainer.insert("comment", ("901", "001", "120", "Great milkshake burger", "07/12"))
    maintainer.insert("restaurant", ("902", "Grill House", "American", 11, 3.5))
    maintainer.delete("comment", lambda record: record["cid"] == "203")

    retained_hits = 0
    recomputed = 0
    for keywords in workload.unique_queries():
        served = service.search(keywords)
        fresh = engine.searcher.search(keywords, k=5, size_threshold=20)
        assert as_comparable(served.results) == as_comparable(fresh), keywords
        if served.cached:
            retained_hits += 1
        else:
            recomputed += 1
    after = service.statistics()
    service.close()
    unique_count = len(workload.unique_queries())
    return {
        "unique_queries": unique_count,
        "updates_applied": maintainer.updates_applied,
        "retained_hits": retained_hits,
        "recomputed": recomputed,
        "retained_hit_rate": retained_hits / unique_count,
        "stale_drops": after["cache"]["stale_drops"] - before["cache"]["stale_drops"],
        "epoch": after["epoch"],
        "post_update_results_verified_fresh": True,
    }


# ----------------------------------------------------------------------
def run_benchmark() -> Dict:
    fragments = synthetic_fragments(FRAGMENTS)
    workload_source = build_searcher(fragments, InMemoryStore())
    workload = zipf_keyword_queries(
        workload_source.index.document_frequencies(),
        count=QUERY_COUNT,
        skew=SKEW,
        keywords_per_query=(1, 2),
        seed=31,
    )

    cache_comparison = run_cache_comparison(fragments, workload)
    worker_scaling = run_worker_scaling(fragments, workload)
    mixed = run_mixed_maintenance()

    payload = {
        "fragments": FRAGMENTS,
        "queries": QUERY_COUNT,
        "unique_queries": len(workload.unique_queries()),
        "zipf_skew": SKEW,
        "k": K,
        "size_threshold": SIZE_THRESHOLD,
        "cache_comparison": cache_comparison,
        "worker_scaling": worker_scaling,
        "mixed_maintenance": mixed,
    }

    print_table(
        ["backend", "uncached p50 (ms)", "cold p50 (ms)", "hot p50 (ms)", "hot p99 (ms)",
         "hot hit rate", "hot speedup", "parity"],
        [
            (
                m["backend"],
                round(m["uncached"]["p50_ms"], 4),
                round(m["cold_cache"]["p50_ms"], 4),
                round(m["hot_cache"]["p50_ms"], 4),
                round(m["hot_cache"]["p99_ms"], 4),
                round(m["hot_hit_rate"], 3),
                round(m["hot_speedup_vs_uncached"], 1),
                "ok" if m["parity_ok"] else "MISMATCH",
            )
            for m in cache_comparison
        ],
        title=f"SearchService vs uncached search (Zipf skew {SKEW}, {QUERY_COUNT} queries)",
    )
    print_table(
        ["workers", "throughput (q/s)", "speedup vs 1"],
        [
            (p["workers"], round(p["throughput_qps"], 1), round(p["speedup_vs_1_worker"], 2))
            for p in worker_scaling["points"]
        ],
        title=f"search_many scaling over blocking reads ({worker_scaling['read_delay_us']:.0f}us/read)",
    )
    print_table(
        ["unique queries", "updates", "retained hits", "recomputed", "stale drops"],
        [
            (
                mixed["unique_queries"],
                mixed["updates_applied"],
                mixed["retained_hits"],
                mixed["recomputed"],
                mixed["stale_drops"],
            )
        ],
        title="Mixed search + maintenance (fooddb): epoch invalidation is surgical",
    )

    path = write_json("BENCH_serving.json", payload)
    print(f"\nwrote {path}")
    return payload


def test_serving_benchmark(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)

    # every service answer matched the uncached baseline byte-for-byte
    assert all(m["parity_ok"] for m in payload["cache_comparison"])
    # acceptance: >= 5x hot-cache speedup over uncached TopKSearcher.search
    best_hot = max(m["hot_speedup_vs_uncached"] for m in payload["cache_comparison"])
    assert best_hot >= 5.0, payload["cache_comparison"]
    # acceptance: throughput grows with workers on a blocking-read backend
    # ("linear-ish"; the CI floor is deliberately below the ~3x typical here)
    points = payload["worker_scaling"]["points"]
    if len(points) > 1 and points[-1]["workers"] > points[0]["workers"]:
        assert points[-1]["speedup_vs_1_worker"] >= 1.8, points
    # maintenance must invalidate surgically: something recomputed, the
    # untouched majority still hit, and every answer verified fresh
    mixed = payload["mixed_maintenance"]
    assert mixed["recomputed"] >= 1
    assert mixed["retained_hits"] >= 1
    assert mixed["post_update_results_verified_fresh"]


if __name__ == "__main__":
    run_benchmark()
