"""Serving-layer benchmark: the cached, concurrent SearchService under load.

Drives :class:`~repro.serving.SearchService` with Zipf-skewed keyword-query
streams (:func:`repro.datasets.workloads.zipf_keyword_queries`) and measures
the three things a query frontend is judged by:

1. **Cache effectiveness** — per-request latency distributions (p50/p95/p99)
   of the uncached ``TopKSearcher.search`` baseline vs. a cold-cache and a
   hot-cache service pass, on the in-memory and the sharded backend.  Every
   service answer is checked byte-identical to the uncached baseline.
2. **Worker scaling** — ``search_many`` throughput at 1/2/4 workers over a
   store whose reads block (:class:`BlockingReadStore`, emulating the remote
   shard / disk round-trips of a deployed backend, where thread concurrency
   actually overlaps waiting), and — separately — over the real
   :class:`DiskStore` with simulated storage latency per SQL read
   (:class:`StorageLatencyDiskStore`), where the per-thread read-connection
   pool is what lets workers overlap at all: the same pass re-run in the
   pre-overhaul single-locked-connection regime is reported alongside.
3. **Mixed search + maintenance** — a hot cache over fooddb, interleaved with
   ``IncrementalMaintainer`` updates: epoch-based invalidation must drop every
   query whose dependencies were touched (each recomputed answer is verified
   against a fresh search) while queries the updates did not touch keep
   hitting.  fooddb is tiny and hub-heavy, so most queries there genuinely
   depend on the updated fragments; the retained-hit count reports how many
   did not.

Run under pytest (``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_serving.py``); emits
``BENCH_serving.json``.

Environment knobs: ``REPRO_BENCH_SERVING_FRAGMENTS`` (synthetic fragment
count, default 4000), ``REPRO_BENCH_SERVING_QUERIES`` (stream length, default
240), ``REPRO_BENCH_SERVING_SKEW`` (Zipf skew, default 1.1),
``REPRO_BENCH_SERVING_DELAY_US`` (blocked-read latency in microseconds for
the scaling section, default 150), ``REPRO_BENCH_SERVING_WORKERS``
(comma-separated worker counts, default ``1,2,4``),
``REPRO_BENCH_SERVING_DISK_DELAY_US`` (simulated storage latency per disk
SQL read, default 150), ``REPRO_BENCH_SERVING_DISK_QUERIES`` (distinct
queries per disk-scaling pass, default 96).
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time
from typing import Dict, List, Tuple

from repro.bench.reporting import print_table, summarize_latencies, write_json
from repro.core.engine import DashEngine
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.incremental import IncrementalMaintainer
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.fooddb import build_fooddb, fooddb_search_query
from repro.datasets.workloads import zipf_keyword_queries
from repro.serving import SearchService
from repro.store import DiskStore, InMemoryStore, ShardedStore
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec

# The synthetic workload (fooddb-shaped fragment sets: cuisine chains, mixed
# vocabulary, planted hot keywords) is shared with the store-backend
# benchmark so the two benchmarks' numbers stay comparable.
from bench_store_backends import HOT_KEYWORDS, QUERY, SPEC, URI, synthetic_fragments

FRAGMENTS = int(os.environ.get("REPRO_BENCH_SERVING_FRAGMENTS", "4000"))
QUERY_COUNT = int(os.environ.get("REPRO_BENCH_SERVING_QUERIES", "240"))
SKEW = float(os.environ.get("REPRO_BENCH_SERVING_SKEW", "1.1"))
DELAY_SECONDS = int(os.environ.get("REPRO_BENCH_SERVING_DELAY_US", "150")) / 1_000_000.0
WORKER_COUNTS = tuple(
    int(value) for value in os.environ.get("REPRO_BENCH_SERVING_WORKERS", "1,2,4").split(",")
)
DISK_DELAY_SECONDS = (
    int(os.environ.get("REPRO_BENCH_SERVING_DISK_DELAY_US", "150")) / 1_000_000.0
)
DISK_SCALING_QUERIES = int(os.environ.get("REPRO_BENCH_SERVING_DISK_QUERIES", "96"))
K = 10
SIZE_THRESHOLD = 200


class BlockingReadStore(InMemoryStore):
    """An in-memory store whose hot-path reads block for a fixed latency.

    Emulates the backend of a deployed search tier — remote shards, disk —
    where each postings/size/adjacency lookup is a round-trip.  Thread-pool
    concurrency overlaps those waits, which is what the worker-scaling
    section measures (pure in-memory reads are GIL-bound and cannot scale).
    """

    def __init__(self, delay_seconds: float) -> None:
        super().__init__()
        self.delay_seconds = delay_seconds
        self.blocked_reads = 0

    def _block(self) -> None:
        self.blocked_reads += 1
        time.sleep(self.delay_seconds)

    def postings(self, keyword):
        self._block()
        return super().postings(keyword)

    def fragment_sizes_for(self, identifiers):
        self._block()
        return super().fragment_sizes_for(identifiers)

    def fragment_size(self, identifier):
        self._block()
        return super().fragment_size(identifier)

    def neighbors(self, identifier):
        self._block()
        return super().neighbors(identifier)


class StorageLatencyDiskStore(DiskStore):
    """A real :class:`DiskStore` whose SQL reads pay a storage round-trip.

    On a laptop's page cache, sqlite reads return in microseconds and a
    search is GIL-bound Python — no thread count can speed that up.  The
    deployed regime the read-connection pool exists for is different:
    sqlite on networked or cold block storage, where each read blocks in
    the kernel with the GIL released.  ``time.sleep`` is the stand-in for
    that blocking (the same methodology as :class:`BlockingReadStore`
    above; the delay is recorded in the JSON payload).

    ``pooled=False`` reproduces the pre-overhaul read path byte for byte:
    every read — and its latency — convoys behind the single shared
    connection's lock, which is exactly why disk-backed ``search_many``
    used not to scale with workers.
    """

    def __init__(self, path: str, delay_seconds: float, pooled: bool = True) -> None:
        super().__init__(path)
        self.delay_seconds = delay_seconds
        self.pooled = pooled

    def _execute_read(self, sql, parameters=()):
        if not self.pooled:
            with self._lock:
                if self.delay_seconds:
                    time.sleep(self.delay_seconds)
                return self._connection.execute(sql, parameters).fetchall()
        if self.delay_seconds:
            time.sleep(self.delay_seconds)
        return super()._execute_read(sql, parameters)


# ----------------------------------------------------------------------
def build_searcher(fragments, store) -> TopKSearcher:
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    sizes = {identifier: index.fragment_size(identifier) for identifier in fragments}
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    return TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))


def as_comparable(results) -> List[Tuple]:
    return [(r.url, r.score, r.fragments, r.size) for r in results]


# ----------------------------------------------------------------------
# section 1: uncached vs cold vs hot cache
# ----------------------------------------------------------------------
def run_cache_comparison(fragments, workload) -> List[Dict]:
    measurements = []
    for backend, store_factory in (
        ("memory", InMemoryStore),
        ("sharded-4", lambda: ShardedStore(shards=4)),
    ):
        searcher = build_searcher(fragments, store_factory())
        reference: Dict[Tuple[str, ...], List[Tuple]] = {}
        uncached: List[float] = []
        for keywords in workload:
            started = time.perf_counter()
            results = searcher.search(keywords, k=K, size_threshold=SIZE_THRESHOLD)
            uncached.append(time.perf_counter() - started)
            reference.setdefault(keywords, as_comparable(results))

        service = SearchService(searcher, cache_size=4096, workers=1)
        parity_ok = True
        cold: List[float] = []
        for keywords in workload:
            started = time.perf_counter()
            served = service.search(keywords, k=K, size_threshold=SIZE_THRESHOLD)
            cold.append(time.perf_counter() - started)
            parity_ok = parity_ok and as_comparable(served.results) == reference[keywords]
        hot: List[float] = []
        hot_hits = 0
        for keywords in workload:
            started = time.perf_counter()
            served = service.search(keywords, k=K, size_threshold=SIZE_THRESHOLD)
            hot.append(time.perf_counter() - started)
            hot_hits += 1 if served.cached else 0
            parity_ok = parity_ok and as_comparable(served.results) == reference[keywords]

        summary_uncached = summarize_latencies(uncached)
        summary_cold = summarize_latencies(cold)
        summary_hot = summarize_latencies(hot)
        measurements.append(
            {
                "backend": backend,
                "uncached": summary_uncached,
                "cold_cache": summary_cold,
                "hot_cache": summary_hot,
                "hot_hit_rate": hot_hits / len(workload),
                "hot_speedup_vs_uncached": summary_uncached["mean_ms"] / summary_hot["mean_ms"],
                "cold_speedup_vs_uncached": summary_uncached["mean_ms"] / summary_cold["mean_ms"],
                "parity_ok": parity_ok,
            }
        )
        service.close()
    return measurements


# ----------------------------------------------------------------------
# section 2: worker scaling over a blocking-read store
# ----------------------------------------------------------------------
def run_worker_scaling(fragments, workload) -> Dict:
    unique_queries = list(workload.unique_queries())[:120]
    points = []
    for workers in WORKER_COUNTS:
        searcher = build_searcher(fragments, BlockingReadStore(DELAY_SECONDS))
        service = SearchService(searcher, cache_size=0, workers=workers)
        started = time.perf_counter()
        batch = service.search_many(unique_queries, k=K, size_threshold=SIZE_THRESHOLD)
        elapsed = time.perf_counter() - started
        assert len(batch) == len(unique_queries)
        points.append(
            {
                "workers": workers,
                "queries": len(unique_queries),
                "elapsed_seconds": elapsed,
                "throughput_qps": len(unique_queries) / elapsed,
            }
        )
        service.close()
    base = points[0]["throughput_qps"]
    for point in points:
        point["speedup_vs_1_worker"] = point["throughput_qps"] / base
    return {
        "read_delay_us": DELAY_SECONDS * 1_000_000.0,
        "note": "reads block (simulated remote shards); threads overlap the waits",
        "points": points,
    }


# ----------------------------------------------------------------------
# section 2b: worker scaling on the real disk backend
# ----------------------------------------------------------------------
def run_disk_worker_scaling(fragments, workload) -> Dict:
    """``search_many`` on a :class:`DiskStore` at increasing worker counts.

    The corpus is built onto a real sqlite file once; every pass answers the
    same distinct-query batch with cold in-memory read caches
    (``drop_read_caches``), so each pass exercises the pooled SQL read path
    end to end.  Reads pay ``DISK_DELAY_SECONDS`` of simulated storage
    latency (see :class:`StorageLatencyDiskStore`).  Every pass's ranked
    results are checked byte-identical against a latency-free serial
    reference, and a final pass re-runs the top worker count in the
    pre-overhaul single-locked-connection regime — the row that shows the
    connection pool, not the thread pool, is what makes disk scale.
    """
    unique_queries = list(workload.unique_queries())[:DISK_SCALING_QUERIES]
    directory = tempfile.mkdtemp(prefix="repro-bench-serving-disk-")
    store = StorageLatencyDiskStore(os.path.join(directory, "store.sqlite"), delay_seconds=0.0)
    searcher = build_searcher(fragments, store)
    # Latency-free serial pass: the parity oracle for every measured pass.
    reference = [
        as_comparable(searcher.search(list(keywords), k=K, size_threshold=SIZE_THRESHOLD))
        for keywords in unique_queries
    ]
    store.delay_seconds = DISK_DELAY_SECONDS

    def measure(workers: int) -> Tuple[Dict, bool]:
        store.drop_read_caches()
        service = SearchService(searcher, cache_size=0, workers=workers)
        started = time.perf_counter()
        batch = service.search_many(unique_queries, k=K, size_threshold=SIZE_THRESHOLD)
        elapsed = time.perf_counter() - started
        service.close()
        parity = [as_comparable(result.results) for result in batch] == reference
        point = {
            "workers": workers,
            "queries": len(unique_queries),
            "elapsed_seconds": elapsed,
            "throughput_qps": len(unique_queries) / elapsed,
        }
        return point, parity

    parity_ok = True
    points = []
    totals_before = searcher.lifetime_statistics()
    for workers in WORKER_COUNTS:
        point, parity = measure(workers)
        parity_ok = parity_ok and parity
        points.append(point)
    totals_after = searcher.lifetime_statistics()
    base = points[0]["throughput_qps"]
    for point in points:
        point["speedup_vs_1_worker"] = point["throughput_qps"] / base

    # The pre-pool regime at the top worker count: reads convoy behind the
    # write connection's lock, so worker threads buy (almost) nothing.
    store.pooled = False
    locked_point, locked_parity = measure(max(WORKER_COUNTS))
    parity_ok = parity_ok and locked_parity
    locked_point["speedup_vs_1_worker"] = locked_point["throughput_qps"] / base
    store.close()
    shutil.rmtree(directory, ignore_errors=True)

    # Pruning deltas over the measured pooled passes only — the serial
    # reference and the locked re-run would otherwise inflate the counts.
    return {
        "read_delay_us": DISK_DELAY_SECONDS * 1_000_000.0,
        "note": (
            "real DiskStore on a sqlite file; SQL reads pay a simulated "
            "storage round-trip (GIL released, as cold/networked block "
            "storage would); caches dropped before every pass"
        ),
        "points": points,
        "locked_connection_at_max_workers": locked_point,
        "pruned_dequeues": totals_after["pruned_dequeues"] - totals_before["pruned_dequeues"],
        "pruned_expansions": (
            totals_after["pruned_expansions"] - totals_before["pruned_expansions"]
        ),
        "parity_ok": parity_ok,
    }


# ----------------------------------------------------------------------
# section 3: mixed search + maintenance over fooddb
# ----------------------------------------------------------------------
def run_mixed_maintenance() -> Dict:
    database = build_fooddb()
    application = WebApplication(
        name="Search", uri=URI, query=fooddb_search_query(database), query_string_spec=SPEC
    )
    engine = DashEngine.build(application, database, algorithm="integrated", analyze_source=False)
    service = engine.serving(cache_size=256, workers=1, default_k=5, default_size_threshold=20)
    maintainer = IncrementalMaintainer(
        engine.application.query, database, engine.index, engine.graph
    )

    workload = zipf_keyword_queries(
        engine.index.document_frequencies(), count=80, skew=SKEW, keywords_per_query=(1, 2), seed=23
    )
    service.search_many(list(workload))  # populate
    before = service.statistics()

    maintainer.insert("comment", ("901", "001", "120", "Great milkshake burger", "07/12"))
    maintainer.insert("restaurant", ("902", "Grill House", "American", 11, 3.5))
    maintainer.delete("comment", lambda record: record["cid"] == "203")

    retained_hits = 0
    recomputed = 0
    for keywords in workload.unique_queries():
        served = service.search(keywords)
        fresh = engine.searcher.search(keywords, k=5, size_threshold=20)
        assert as_comparable(served.results) == as_comparable(fresh), keywords
        if served.cached:
            retained_hits += 1
        else:
            recomputed += 1
    after = service.statistics()
    service.close()
    unique_count = len(workload.unique_queries())
    return {
        "unique_queries": unique_count,
        "updates_applied": maintainer.updates_applied,
        "retained_hits": retained_hits,
        "recomputed": recomputed,
        "retained_hit_rate": retained_hits / unique_count,
        "stale_drops": after["cache"]["stale_drops"] - before["cache"]["stale_drops"],
        "epoch": after["epoch"],
        "post_update_results_verified_fresh": True,
    }


# ----------------------------------------------------------------------
def run_benchmark() -> Dict:
    fragments = synthetic_fragments(FRAGMENTS)
    workload_source = build_searcher(fragments, InMemoryStore())
    workload = zipf_keyword_queries(
        workload_source.index.document_frequencies(),
        count=QUERY_COUNT,
        skew=SKEW,
        keywords_per_query=(1, 2),
        seed=31,
    )

    cache_comparison = run_cache_comparison(fragments, workload)
    worker_scaling = run_worker_scaling(fragments, workload)
    disk_worker_scaling = run_disk_worker_scaling(fragments, workload)
    mixed = run_mixed_maintenance()

    payload = {
        "fragments": FRAGMENTS,
        "queries": QUERY_COUNT,
        "unique_queries": len(workload.unique_queries()),
        "zipf_skew": SKEW,
        "k": K,
        "size_threshold": SIZE_THRESHOLD,
        "cache_comparison": cache_comparison,
        "worker_scaling": worker_scaling,
        "disk_worker_scaling": disk_worker_scaling,
        "mixed_maintenance": mixed,
    }

    print_table(
        ["backend", "uncached p50 (ms)", "cold p50 (ms)", "hot p50 (ms)", "hot p99 (ms)",
         "hot hit rate", "hot speedup", "parity"],
        [
            (
                m["backend"],
                round(m["uncached"]["p50_ms"], 4),
                round(m["cold_cache"]["p50_ms"], 4),
                round(m["hot_cache"]["p50_ms"], 4),
                round(m["hot_cache"]["p99_ms"], 4),
                round(m["hot_hit_rate"], 3),
                round(m["hot_speedup_vs_uncached"], 1),
                "ok" if m["parity_ok"] else "MISMATCH",
            )
            for m in cache_comparison
        ],
        title=f"SearchService vs uncached search (Zipf skew {SKEW}, {QUERY_COUNT} queries)",
    )
    print_table(
        ["workers", "throughput (q/s)", "speedup vs 1"],
        [
            (p["workers"], round(p["throughput_qps"], 1), round(p["speedup_vs_1_worker"], 2))
            for p in worker_scaling["points"]
        ],
        title=f"search_many scaling over blocking reads ({worker_scaling['read_delay_us']:.0f}us/read)",
    )
    disk_rows = [
        (p["workers"], "pooled", round(p["throughput_qps"], 1),
         round(p["speedup_vs_1_worker"], 2))
        for p in disk_worker_scaling["points"]
    ]
    locked = disk_worker_scaling["locked_connection_at_max_workers"]
    disk_rows.append(
        (locked["workers"], "locked (pre-overhaul)", round(locked["throughput_qps"], 1),
         round(locked["speedup_vs_1_worker"], 2))
    )
    print_table(
        ["workers", "read connections", "throughput (q/s)", "speedup vs 1"],
        disk_rows,
        title=(
            f"disk-backed search_many scaling "
            f"({disk_worker_scaling['read_delay_us']:.0f}us storage latency/read, "
            f"parity {'ok' if disk_worker_scaling['parity_ok'] else 'MISMATCH'})"
        ),
    )
    print_table(
        ["unique queries", "updates", "retained hits", "recomputed", "stale drops"],
        [
            (
                mixed["unique_queries"],
                mixed["updates_applied"],
                mixed["retained_hits"],
                mixed["recomputed"],
                mixed["stale_drops"],
            )
        ],
        title="Mixed search + maintenance (fooddb): epoch invalidation is surgical",
    )

    path = write_json("BENCH_serving.json", payload)
    print(f"\nwrote {path}")
    return payload


def test_serving_benchmark(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)

    # every service answer matched the uncached baseline byte-for-byte
    assert all(m["parity_ok"] for m in payload["cache_comparison"])
    # acceptance: >= 5x hot-cache speedup over uncached TopKSearcher.search
    best_hot = max(m["hot_speedup_vs_uncached"] for m in payload["cache_comparison"])
    assert best_hot >= 5.0, payload["cache_comparison"]
    # acceptance: throughput grows with workers on a blocking-read backend
    # ("linear-ish"; the CI floor is deliberately below the ~3x typical here)
    points = payload["worker_scaling"]["points"]
    if len(points) > 1 and points[-1]["workers"] > points[0]["workers"]:
        assert points[-1]["speedup_vs_1_worker"] >= 1.8, points
    # acceptance: the disk backend's pooled readers must scale too, with
    # every pass's ranked results byte-identical to the latency-free
    # serial reference
    disk = payload["disk_worker_scaling"]
    assert disk["parity_ok"]
    disk_points = disk["points"]
    if len(disk_points) > 1 and disk_points[-1]["workers"] > disk_points[0]["workers"]:
        # Scale-independent regression check: the connection pool must beat
        # the pre-overhaul locked-connection regime at the same worker count
        # (on tiny smoke corpora the in-memory caches absorb most SQL
        # mid-pass, so the absolute speedup floor only binds at full scale).
        locked = disk["locked_connection_at_max_workers"]
        assert disk_points[-1]["throughput_qps"] >= 1.2 * locked["throughput_qps"], disk
        if FRAGMENTS >= 4000:
            # acceptance: >= 1.5x at the top worker count vs 1 worker
            assert disk_points[-1]["speedup_vs_1_worker"] >= 1.5, disk_points
    # maintenance must invalidate surgically: something recomputed, the
    # untouched majority still hit, and every answer verified fresh
    mixed = payload["mixed_maintenance"]
    assert mixed["recomputed"] >= 1
    assert mixed["retained_hits"] >= 1
    assert mixed["post_update_results_verified_fresh"]


if __name__ == "__main__":
    run_benchmark()
