"""Cluster-serving benchmark: scatter-gather search over partitioned nodes.

Drives the :class:`~repro.cluster.SearchCluster` router with the same
Zipf-skewed workload as ``bench_serving.py`` and measures the four things
the cluster exists for:

1. **Node scaling** — routed ``search_many`` throughput at 1/2/4 nodes over
   a *fixed* partition layout, where each node is a contended resource:
   every copy a node hosts shares one per-node lock and every hot-path read
   holds it for a simulated round-trip (:class:`NodeCapacityStore`).  One
   node serializes the whole corpus behind one lock; four nodes are four
   independent capacity pools — that is the scaling being measured, and
   every routed answer is checked byte-identical to a latency-free
   single-store reference (``parity_ok`` per row).
2. **Replica reads** — the same contended-node model with 1 vs 2 copies per
   partition: round-robin replica reads add capacity for hot partitions.
3. **Merge early termination** — the router's fan-out counters on the
   impact-skewed workload: partials materialized by partition streams but
   never ranked (``partials_discarded``), and nodes whose streams were cut
   off before exhaustion (``nodes_short_circuited``).
4. **Rebalancing under load** — partitions are moved between nodes while a
   background thread keeps searching: every mid-move answer and the full
   post-move sweep must stay byte-identical (``parity_ok``).
5. **Warm term-stats cache** — the same contended-node workload run cold
   (cache invalidated before every query, so each pays the PR 9-style DF
   scatter) and warm (epoch-validated :class:`~repro.cluster.TermStatsCache`
   hits): measured fan-out submits per query must halve and p50 latency
   must drop, with every warm answer byte-identical (``parity_ok``).
6. **Partition pruning** — rare keywords planted into single cuisine
   chains: partitions whose admissible bound is zero are never contacted
   (``partitions_pruned``), with byte parity against the single-store
   reference (``parity_ok``).

Run under pytest (``PYTHONPATH=src python -m pytest benchmarks/bench_cluster_serving.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_cluster_serving.py``);
emits ``BENCH_cluster_serving.json``.

Environment knobs: ``REPRO_BENCH_CLUSTER_FRAGMENTS`` (synthetic fragment
count, default 4000), ``REPRO_BENCH_CLUSTER_QUERIES`` (stream length,
default 160), ``REPRO_BENCH_CLUSTER_DELAY_US`` (per-read node latency in
microseconds, default 150), ``REPRO_BENCH_CLUSTER_NODES`` (comma-separated
node counts, default ``1,2,4``), ``REPRO_BENCH_CLUSTER_WORKERS`` (service
worker threads, default 8), ``REPRO_BENCH_CLUSTER_REPLICAS``
(comma-separated copies per partition for the replica section, default
``1,2``).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Tuple

from repro.bench.reporting import print_table, write_json
from repro.cluster import SearchCluster
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.search import TopKSearcher
from repro.core.urls import UrlFormulator
from repro.datasets.workloads import zipf_keyword_queries
from repro.store import InMemoryStore

# Shared fooddb-shaped synthetic workload (cuisine chains, planted hot
# keywords) — the same corpus generator as the store-backend and serving
# benchmarks, so the cluster numbers stay comparable with theirs.
from bench_store_backends import HOT_KEYWORDS, QUERY, SPEC, URI, synthetic_fragments

FRAGMENTS = int(os.environ.get("REPRO_BENCH_CLUSTER_FRAGMENTS", "4000"))
QUERY_COUNT = int(os.environ.get("REPRO_BENCH_CLUSTER_QUERIES", "160"))
DELAY_SECONDS = int(os.environ.get("REPRO_BENCH_CLUSTER_DELAY_US", "150")) / 1_000_000.0
NODE_COUNTS = tuple(
    int(value) for value in os.environ.get("REPRO_BENCH_CLUSTER_NODES", "1,2,4").split(",")
)
WORKERS = int(os.environ.get("REPRO_BENCH_CLUSTER_WORKERS", "8"))
REPLICA_COUNTS = tuple(
    int(value) for value in os.environ.get("REPRO_BENCH_CLUSTER_REPLICAS", "1,2").split(",")
)
K = 10
SIZE_THRESHOLD = 200
SKEW = 1.1


class NodeCapacityStore(InMemoryStore):
    """A partition copy whose reads contend for its *node's* capacity.

    All copies hosted on one simulated node share one lock, and every
    hot-path read holds it for ``delay_seconds`` — the stand-in for a
    node's saturated NIC/disk.  With the whole corpus on one node, every
    concurrent query convoys behind one lock; spreading partitions over N
    nodes gives the same workload N independent capacity pools.  (Plain
    in-memory reads are GIL-bound and would show no topology effect.)
    """

    def __init__(self, node_lock: threading.Lock, delay_seconds: float) -> None:
        super().__init__()
        self._node_lock = node_lock
        self.delay_seconds = delay_seconds
        self.blocked_reads = 0

    def _pay(self) -> None:
        with self._node_lock:
            self.blocked_reads += 1
            if self.delay_seconds:
                time.sleep(self.delay_seconds)

    def posting_blocks_for_many(self, keywords):
        self._pay()
        return super().posting_blocks_for_many(keywords)

    def postings_for_many(self, keywords):
        self._pay()
        return super().postings_for_many(keywords)

    def fragment_sizes_for(self, identifiers):
        self._pay()
        return super().fragment_sizes_for(identifiers)

    def fragment_term_frequencies_for(self, identifiers):
        self._pay()
        return super().fragment_term_frequencies_for(identifiers)

    def neighbors(self, identifier):
        self._pay()
        return super().neighbors(identifier)


def capacity_factory(delay_seconds: float) -> Callable[[str, int], NodeCapacityStore]:
    """A ``node_store`` factory giving every node one shared capacity lock."""
    node_locks: Dict[str, threading.Lock] = {}

    def factory(node_id: str, partition: int) -> NodeCapacityStore:
        lock = node_locks.setdefault(node_id, threading.Lock())
        return NodeCapacityStore(lock, delay_seconds)

    return factory


# ----------------------------------------------------------------------
def build_searcher(fragments, store) -> TopKSearcher:
    index = InvertedFragmentIndex(store=store)
    for identifier, term_frequencies in fragments.items():
        index.add_fragment(identifier, term_frequencies)
    index.finalize()
    sizes = {identifier: index.fragment_size(identifier) for identifier in fragments}
    graph = FragmentGraph.build(QUERY, sizes, store=store)
    return TopKSearcher(index, graph, UrlFormulator(QUERY, SPEC, URI))


def as_comparable(results) -> List[Tuple]:
    return [(r.url, r.score, r.fragments, r.size) for r in results]


def reference_answers(searcher, queries) -> Dict[Tuple[str, ...], List[Tuple]]:
    """The latency-free single-store oracle every routed pass is checked against."""
    return {
        keywords: as_comparable(
            searcher.search(list(keywords), k=K, size_threshold=SIZE_THRESHOLD)
        )
        for keywords in queries
    }


# ----------------------------------------------------------------------
# section 1: node-count scaling under per-node capacity contention
# ----------------------------------------------------------------------
def run_node_scaling(source_store, queries, reference) -> Dict:
    partitions = max(NODE_COUNTS)
    points = []
    for nodes in NODE_COUNTS:
        cluster = SearchCluster.build(
            QUERY, SPEC, URI, source_store,
            nodes=nodes, replicas=1, partitions=partitions,
            node_store=capacity_factory(DELAY_SECONDS),
        )
        service = cluster.service(cache_size=0, workers=WORKERS)
        started = time.perf_counter()
        batch = service.search_many(queries, k=K, size_threshold=SIZE_THRESHOLD)
        elapsed = time.perf_counter() - started
        parity_ok = all(
            as_comparable(served.results) == reference[keywords]
            for served, keywords in zip(batch, queries)
        )
        lifetime = cluster.router.lifetime_statistics()
        points.append(
            {
                "nodes": nodes,
                "partitions": partitions,
                "queries": len(queries),
                "elapsed_seconds": elapsed,
                "throughput_qps": len(queries) / elapsed,
                "partials_merged": lifetime["partials_merged"],
                "partials_discarded": lifetime["partials_discarded"],
                "nodes_short_circuited": lifetime["nodes_short_circuited"],
                "parity_ok": parity_ok,
            }
        )
        service.close()
    base = points[0]["throughput_qps"]
    for point in points:
        point["speedup_vs_1_node"] = point["throughput_qps"] / base
    return {
        "read_delay_us": DELAY_SECONDS * 1_000_000.0,
        "workers": WORKERS,
        "note": (
            "fixed partition layout; each node's copies share one capacity "
            "lock per read — node count is the number of independent "
            "capacity pools"
        ),
        "points": points,
    }


# ----------------------------------------------------------------------
# section 2: replica reads for hot partitions
# ----------------------------------------------------------------------
def run_replica_reads(source_store, queries, reference) -> Dict:
    nodes = max(NODE_COUNTS)
    points = []
    for replicas in REPLICA_COUNTS:
        cluster = SearchCluster.build(
            QUERY, SPEC, URI, source_store,
            nodes=nodes, replicas=replicas, partitions=nodes,
            node_store=capacity_factory(DELAY_SECONDS),
        )
        service = cluster.service(cache_size=0, workers=WORKERS)
        started = time.perf_counter()
        batch = service.search_many(queries, k=K, size_threshold=SIZE_THRESHOLD)
        elapsed = time.perf_counter() - started
        parity_ok = all(
            as_comparable(served.results) == reference[keywords]
            for served, keywords in zip(batch, queries)
        )
        points.append(
            {
                "replicas": replicas,
                "nodes": nodes,
                "queries": len(queries),
                "elapsed_seconds": elapsed,
                "throughput_qps": len(queries) / elapsed,
                "parity_ok": parity_ok,
            }
        )
        service.close()
    return {
        "note": "round-robin reads over fresh replicas spread hot partitions' load",
        "points": points,
    }


# ----------------------------------------------------------------------
# section 3: merge early termination on the impact-skewed workload
# ----------------------------------------------------------------------
def run_merge_counters(source_store, searcher) -> Dict:
    """Fan-out counters over hot-keyword queries at small k.

    The planted hot keywords give every partition plenty of candidates, and
    exactness forces most of them to be materialized anyway: the winning
    pages assemble by absorbing high-weight seeds, so the emission frontier
    ends up *below* every block bound and no admissible-bound scheme —
    single-store or merged — may leave a block undecoded.  The figure that
    isolates what the *cluster* adds on top of that algorithmic floor is
    ``merge_overhead``: ``partials_discarded`` minus the single-store run's
    own leftover queue (``seeds_scored + expansions - dequeues``) on the
    identical queries.  The bound-keyed, limit-aware merge holds it at or
    below zero — partition streams collectively materialize no more than
    the one merged queue would, the strongest claim exact scatter-gather
    can make.
    """
    nodes = max(NODE_COUNTS)
    cluster = SearchCluster.build(
        QUERY, SPEC, URI, source_store, nodes=nodes, partitions=nodes,
    )
    hot_queries = [(keyword,) for keyword in HOT_KEYWORDS] + [tuple(HOT_KEYWORDS[:2])]
    parity_ok = True
    single_leftover = 0
    for k in (1, K):
        for keywords in hot_queries:
            routed = cluster.router.search_detailed(
                keywords, k=k, size_threshold=SIZE_THRESHOLD
            )
            single = searcher.search_detailed(
                keywords, k=k, size_threshold=SIZE_THRESHOLD
            )
            single_leftover += (
                single.statistics.seeds_scored
                + single.statistics.expansions
                - single.statistics.dequeues
            )
            parity_ok = parity_ok and (
                as_comparable(routed.results) == as_comparable(single.results)
            )
    lifetime = cluster.router.lifetime_statistics()
    cluster.close()
    return {
        "nodes": nodes,
        "hot_queries": len(hot_queries) * 2,
        "searches": lifetime["searches"],
        "partials_merged": lifetime["partials_merged"],
        "partials_discarded": lifetime["partials_discarded"],
        "single_store_leftover": single_leftover,
        "merge_overhead": lifetime["partials_discarded"] - single_leftover,
        "discard_ratio": lifetime["discard_ratio"],
        "nodes_queried": lifetime["nodes_queried"],
        "nodes_short_circuited": lifetime["nodes_short_circuited"],
        "blocks_skipped": lifetime["blocks_skipped"],
        "parity_ok": parity_ok,
    }


# ----------------------------------------------------------------------
# section 5: warm term-stats cache — one fan-out round instead of two
# ----------------------------------------------------------------------
def run_warm_stats_cache(source_store, queries, reference) -> Dict:
    """Cold vs warm DF reads over the contended-node workload.

    The cold pass invalidates the term-stats cache before every query, so
    each one pays the full PR 9-style DF scatter (round 1 to every
    partition) on top of the stream opens; the warm pass serves global
    frequencies and bounds from the epoch-validated cache — exactly one
    fan-out round.  ``fanout_submits`` counts thread-pool submits, so the
    per-query ratio is the direct measure of the eliminated round.

    The DF round costs a fixed handful of node reads (~0.6 ms here)
    against a stream/merge phase in the tens of milliseconds, so p50 is
    taken over per-query minima across several rounds — the standard
    scheduler-noise filter (the overhead section of the fault-tolerance
    bench does the same) — to keep the small deterministic saving visible.
    """
    rounds = 3
    nodes = max(NODE_COUNTS)
    cluster = SearchCluster.build(
        QUERY, SPEC, URI, source_store,
        nodes=nodes, replicas=1, partitions=nodes,
        node_store=capacity_factory(DELAY_SECONDS),
    )
    router = cluster.router

    def run_pass(cold: bool) -> Dict:
        best = [float("inf")] * len(queries)
        parity_ok = True
        before = router.lifetime_statistics()["fanout_submits"]
        for _round in range(rounds):
            for position, keywords in enumerate(queries):
                if cold:
                    router.term_stats.invalidate()
                started = time.perf_counter()
                routed = router.search_detailed(
                    keywords, k=K, size_threshold=SIZE_THRESHOLD
                )
                elapsed = time.perf_counter() - started
                if elapsed < best[position]:
                    best[position] = elapsed
                parity_ok = parity_ok and (
                    as_comparable(routed.results) == reference[keywords]
                )
        submits = router.lifetime_statistics()["fanout_submits"] - before
        latencies = sorted(best)
        return {
            "queries": len(queries),
            "rounds": rounds,
            "fanout_submits": submits,
            "submits_per_query": submits / (len(queries) * rounds),
            "p50_latency_ms": latencies[len(latencies) // 2] * 1000.0,
            "parity_ok": parity_ok,
        }

    cold = run_pass(cold=True)
    for keywords in queries:  # prime every workload entry before measuring warm
        router.search_detailed(keywords, k=K, size_threshold=SIZE_THRESHOLD)
    warm = run_pass(cold=False)
    cache = router.term_stats.statistics()
    cluster.close()
    return {
        "nodes": nodes,
        "read_delay_us": DELAY_SECONDS * 1_000_000.0,
        "cold": cold,
        "warm": warm,
        "submit_ratio_cold_over_warm": (
            cold["submits_per_query"] / warm["submits_per_query"]
            if warm["submits_per_query"]
            else float("inf")
        ),
        "p50_speedup_warm_vs_cold": (
            cold["p50_latency_ms"] / warm["p50_latency_ms"]
            if warm["p50_latency_ms"]
            else float("inf")
        ),
        "term_stats_cache": cache,
        "parity_ok": cold["parity_ok"] and warm["parity_ok"],
    }


# ----------------------------------------------------------------------
# section 6: bound-aware partition pruning on an impact-skewed corpus
# ----------------------------------------------------------------------
def run_partition_pruning() -> Dict:
    """Rare keywords confined to single cuisine chains prune the fan-out.

    Each planted keyword lives in exactly one chain, hence one partition —
    every other partition's admissible bound is zero and its stream is
    never opened (with a warm cache the partition is never contacted at
    all).  Parity against a latency-free single-store reference pins
    exactness; an unseen keyword exercises the negative-entry path where
    *every* partition is pruned.
    """
    fragments = synthetic_fragments(min(FRAGMENTS, 2000))
    groups = sorted({identifier[0] for identifier in fragments})
    planted = ("bluefintoro", "quincepaste", "yuzukosho")
    for offset, keyword in enumerate(planted):
        group = groups[offset % len(groups)]
        for identifier, term_frequencies in fragments.items():
            if identifier[0] == group:
                term_frequencies[keyword] = 2 + offset
    source_store = InMemoryStore()
    searcher = build_searcher(fragments, source_store)
    nodes = max(NODE_COUNTS)
    cluster = SearchCluster.build(
        QUERY, SPEC, URI, source_store, nodes=nodes, partitions=nodes,
    )
    router = cluster.router
    pruning_queries = [(keyword,) for keyword in planted]
    pruning_queries.append(tuple(planted[:2]))
    pruning_queries.append(("keyword-nowhere",))
    parity_ok = True
    min_pruned = None
    for _pass in ("cold", "warm"):
        for keywords in pruning_queries:
            routed = router.search_detailed(keywords, k=K, size_threshold=SIZE_THRESHOLD)
            single = searcher.search_detailed(
                list(keywords), k=K, size_threshold=SIZE_THRESHOLD
            )
            parity_ok = parity_ok and (
                as_comparable(routed.results) == as_comparable(single.results)
            )
            pruned = routed.statistics.partitions_pruned
            min_pruned = pruned if min_pruned is None else min(min_pruned, pruned)
    lifetime = router.lifetime_statistics()
    cluster.close()
    return {
        "nodes": nodes,
        "planted_keywords": len(planted),
        "queries": len(pruning_queries) * 2,
        "searches": lifetime["searches"],
        "partitions_pruned": lifetime["partitions_pruned"],
        "min_partitions_pruned": min_pruned,
        "parity_ok": parity_ok,
    }


# ----------------------------------------------------------------------
# section 4: rebalancing under load
# ----------------------------------------------------------------------
def run_rebalance_under_load(source_store, queries, reference) -> Dict:
    nodes = max(NODE_COUNTS)
    cluster = SearchCluster.build(
        QUERY, SPEC, URI, source_store, nodes=nodes, partitions=nodes,
    )
    stop = threading.Event()
    failures: List[Tuple[str, ...]] = []
    searched = [0]

    def keep_searching() -> None:
        index = 0
        while not stop.is_set():
            keywords = queries[index % len(queries)]
            routed = cluster.router.search_detailed(
                keywords, k=K, size_threshold=SIZE_THRESHOLD
            )
            if as_comparable(routed.results) != reference[keywords]:
                failures.append(keywords)
            searched[0] += 1
            index += 1

    reader = threading.Thread(target=keep_searching)
    reader.start()
    moves = 0
    started = time.perf_counter()
    try:
        node_ids = list(cluster.nodes)
        for partition in range(cluster.partition_count):
            primary = cluster.assignment(partition).primary
            target = next(node_id for node_id in node_ids if node_id != primary)
            if cluster.rebalance(partition, target):
                moves += 1
    finally:
        stop.set()
        reader.join()
    elapsed = time.perf_counter() - started
    post_move_parity = all(
        as_comparable(
            cluster.router.search_detailed(
                keywords, k=K, size_threshold=SIZE_THRESHOLD
            ).results
        )
        == reference[keywords]
        for keywords in queries
    )
    cluster.close()
    return {
        "moves": moves,
        "elapsed_seconds": elapsed,
        "searches_during_moves": searched[0],
        "mid_move_mismatches": len(failures),
        "parity_ok": post_move_parity and not failures,
    }


# ----------------------------------------------------------------------
def run_benchmark() -> Dict:
    fragments = synthetic_fragments(FRAGMENTS)
    source_store = InMemoryStore()
    searcher = build_searcher(fragments, source_store)
    workload = zipf_keyword_queries(
        searcher.index.document_frequencies(),
        count=QUERY_COUNT,
        skew=SKEW,
        keywords_per_query=(1, 2),
        seed=31,
    )
    queries = list(workload.unique_queries())
    reference = reference_answers(searcher, queries)

    node_scaling = run_node_scaling(source_store, queries, reference)
    replica_reads = run_replica_reads(source_store, queries, reference)
    merge_counters = run_merge_counters(source_store, searcher)
    rebalance = run_rebalance_under_load(source_store, queries, reference)
    warm_stats = run_warm_stats_cache(source_store, queries, reference)
    pruning = run_partition_pruning()

    payload = {
        "fragments": FRAGMENTS,
        "queries": QUERY_COUNT,
        "unique_queries": len(queries),
        "zipf_skew": SKEW,
        "k": K,
        "size_threshold": SIZE_THRESHOLD,
        "node_scaling": node_scaling,
        "replica_reads": replica_reads,
        "merge_early_termination": merge_counters,
        "rebalance_under_load": rebalance,
        "warm_stats_cache": warm_stats,
        "partition_pruning": pruning,
    }

    print_table(
        ["nodes", "throughput (q/s)", "speedup vs 1", "partials discarded", "parity"],
        [
            (
                p["nodes"],
                round(p["throughput_qps"], 1),
                round(p["speedup_vs_1_node"], 2),
                p["partials_discarded"],
                "ok" if p["parity_ok"] else "MISMATCH",
            )
            for p in node_scaling["points"]
        ],
        title=(
            f"routed search_many node scaling "
            f"({node_scaling['read_delay_us']:.0f}us/read node capacity, "
            f"{WORKERS} workers, {max(NODE_COUNTS)} partitions)"
        ),
    )
    print_table(
        ["replicas", "throughput (q/s)", "parity"],
        [
            (p["replicas"], round(p["throughput_qps"], 1), "ok" if p["parity_ok"] else "MISMATCH")
            for p in replica_reads["points"]
        ],
        title=f"replica reads at {max(NODE_COUNTS)} nodes",
    )
    print_table(
        ["searches", "partials merged", "partials discarded", "single-store leftover",
         "merge overhead", "nodes short-circuited", "parity"],
        [
            (
                merge_counters["searches"],
                merge_counters["partials_merged"],
                merge_counters["partials_discarded"],
                merge_counters["single_store_leftover"],
                merge_counters["merge_overhead"],
                merge_counters["nodes_short_circuited"],
                "ok" if merge_counters["parity_ok"] else "MISMATCH",
            )
        ],
        title="merge early termination (hot keywords, bound-keyed interleave)",
    )
    print_table(
        ["moves", "searches during moves", "mid-move mismatches", "parity"],
        [
            (
                rebalance["moves"],
                rebalance["searches_during_moves"],
                rebalance["mid_move_mismatches"],
                "ok" if rebalance["parity_ok"] else "MISMATCH",
            )
        ],
        title="rebalancing under load (snapshot move, zero downtime)",
    )
    print_table(
        ["pass", "submits/query", "p50 (ms)", "parity"],
        [
            (
                name,
                round(point["submits_per_query"], 2),
                round(point["p50_latency_ms"], 3),
                "ok" if point["parity_ok"] else "MISMATCH",
            )
            for name, point in (("cold", warm_stats["cold"]), ("warm", warm_stats["warm"]))
        ],
        title=(
            f"warm term-stats cache (submit ratio "
            f"{warm_stats['submit_ratio_cold_over_warm']:.2f}x, p50 speedup "
            f"{warm_stats['p50_speedup_warm_vs_cold']:.2f}x)"
        ),
    )
    print_table(
        ["searches", "partitions pruned", "min pruned/query", "parity"],
        [
            (
                pruning["searches"],
                pruning["partitions_pruned"],
                pruning["min_partitions_pruned"],
                "ok" if pruning["parity_ok"] else "MISMATCH",
            )
        ],
        title="bound-aware partition pruning (rare keywords in single chains)",
    )

    path = write_json("BENCH_cluster_serving.json", payload)
    print(f"\nwrote {path}")
    return payload


def test_cluster_serving_benchmark(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)

    # every routed answer — scaling passes, replica passes, hot-keyword
    # merges, mid-move and post-move sweeps — byte-identical to the
    # latency-free single-store reference
    assert all(p["parity_ok"] for p in payload["node_scaling"]["points"])
    assert all(p["parity_ok"] for p in payload["replica_reads"]["points"])
    assert payload["merge_early_termination"]["parity_ok"]
    assert payload["rebalance_under_load"]["parity_ok"]
    assert payload["rebalance_under_load"]["mid_move_mismatches"] == 0
    assert payload["rebalance_under_load"]["moves"] >= 1
    # the bound-aware merge must be dropping work: partials materialized by
    # partition streams but never ranked into the global top-k
    assert payload["merge_early_termination"]["partials_discarded"] > 0
    # the bound-keyed, limit-aware merge adds zero materialization on top
    # of the exact algorithm's own floor: partition streams collectively
    # decode and score no more than the one merged queue would
    assert payload["merge_early_termination"]["merge_overhead"] <= 0, (
        payload["merge_early_termination"]
    )
    # warm term-stats cache: exactly one fan-out round instead of two —
    # submits per query at least halved vs the cold (always-scatter) pass,
    # every answer byte-identical either way
    warm_stats = payload["warm_stats_cache"]
    assert warm_stats["parity_ok"], warm_stats
    assert warm_stats["submit_ratio_cold_over_warm"] >= 2.0, warm_stats
    # bound-aware pruning: every rare-keyword query skips at least one
    # partition outright, with byte parity against the single store
    pruning = payload["partition_pruning"]
    assert pruning["parity_ok"], pruning
    assert pruning["min_partitions_pruned"] >= 1, pruning
    # acceptance: >= 1.5x routed search_many throughput at 4 nodes vs 1 node
    # under simulated per-node capacity (the floor only binds at full scale:
    # on tiny smoke corpora fixed per-query costs dominate the lock waits)
    points = payload["node_scaling"]["points"]
    if FRAGMENTS >= 4000 and len(points) > 1 and points[-1]["nodes"] >= 4:
        assert points[-1]["speedup_vs_1_node"] >= 1.5, points


if __name__ == "__main__":
    run_benchmark()
