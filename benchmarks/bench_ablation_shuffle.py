"""Ablation: where the integrated algorithm's advantage comes from.

Section V-B attributes the integrated algorithm's win to keeping projection
attributes out of the join pipeline.  This ablation decomposes the shuffled
data volume of both algorithms per reporting stage (join / group / index vs
join / extract / consolidate) for Q2 and Q3 on the medium dataset and checks
that the integrated join stage moves a small fraction of the stepwise join
stage's bytes — the mechanism behind Figure 10 — while the indexing-side
stages are comparable.
"""

import pytest

from repro.bench.harness import run_crawl
from repro.bench.reporting import print_table


@pytest.mark.parametrize("query_name", ["Q2", "Q3"])
def test_shuffle_volume_decomposition(benchmark, crawl_cache, tpch_databases,
                                      tpch_query_sets, query_name):
    def collect():
        stepwise = run_crawl(crawl_cache, tpch_databases, tpch_query_sets,
                             "medium", query_name, "stepwise")
        integrated = run_crawl(crawl_cache, tpch_databases, tpch_query_sets,
                               "medium", query_name, "integrated")
        return stepwise, integrated

    stepwise, integrated = benchmark.pedantic(collect, rounds=1, iterations=1)

    sw_stages = stepwise.metrics.stage_shuffle_bytes()
    int_stages = integrated.metrics.stage_shuffle_bytes()
    rows = [
        ("stepwise", *[round(sw_stages.get(stage, 0) / 1e6, 2) for stage in ("join", "group", "index")],
         round(stepwise.metrics.total_shuffle_bytes / 1e6, 2)),
        ("integrated", *[round(int_stages.get(stage, 0) / 1e6, 2) for stage in ("join", "extract", "consolidate")],
         round(integrated.metrics.total_shuffle_bytes / 1e6, 2)),
    ]
    print_table(
        ["algorithm", "stage 1 MB", "stage 2 MB", "stage 3 MB", "total MB"],
        rows,
        title=f"Shuffle-volume decomposition ({query_name}, medium)",
    )

    join_ratio = int_stages["join"] / sw_stages["join"]
    benchmark.extra_info["join_shuffle_ratio"] = round(join_ratio, 3)
    # The integrated join pipeline ships only compact (selection, join, count)
    # rows — a fraction of the stepwise join volume.
    assert join_ratio < 0.5
    # And the end-to-end shuffle volume is lower too.
    assert integrated.metrics.total_shuffle_bytes < stepwise.metrics.total_shuffle_bytes
