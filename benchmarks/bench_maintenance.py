"""Write-path benchmark: batched mutation maintenance vs the per-fragment loop.

Measures what the write-path overhaul is for:

1. **Store mutation throughput** (the acceptance metric) — the exact
   per-fragment swap ops a Zipf-skewed insert/delete stream
   (:func:`repro.datasets.workloads.zipf_mutation_stream`) induces are
   recorded once, then applied to two identical stores two ways: the
   seed-era *per-fragment* loop (one ``replace_fragment`` — on disk, one
   sqlite transaction — plus a ``finalize`` per update) and one
   :meth:`~repro.store.FragmentStore.apply_mutations` batch per
   ``REPRO_BENCH_MAINT_BATCH`` updates (on disk: one crash-safe
   transaction, repeated hot-fragment touches coalesced to one swap).
   After every applied batch the batched store's probe-query results are
   checked **byte-identical** against the per-fragment store at the same
   stream position (``parity_ok``).
2. **End-to-end maintenance throughput** — the same stream through the
   whole :class:`~repro.core.incremental.IncrementalMaintainer`, per-update
   (seed-era ``_refresh``) vs :meth:`apply_updates` chunks.  The affected-
   set join is common to both paths, so this ratio is smaller by
   construction; it is the deployment-visible number.
3. **Read latency while writing** — p50/p95 search latency on the disk
   backend while a background :class:`~repro.serving.MaintenanceService`
   applies the stream, next to the idle baseline: what the read/write gate
   actually costs readers.

Run under pytest (``PYTHONPATH=src python -m pytest benchmarks/bench_maintenance.py``)
or standalone (``PYTHONPATH=src python benchmarks/bench_maintenance.py``);
emits ``BENCH_maintenance.json``.

Environment knobs: ``REPRO_BENCH_MAINT_FRAGMENTS`` (corpus size, default
1200), ``REPRO_BENCH_MAINT_UPDATES`` (stream length, default 320),
``REPRO_BENCH_MAINT_BATCH`` (updates per applied batch, default 64),
``REPRO_BENCH_MAINT_SKEW`` (Zipf skew, default 1.1).
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Dict, List, Tuple

from repro.bench.reporting import print_table, summarize_latencies, write_json
from repro.core.engine import DashEngine
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragment_index import InvertedFragmentIndex
from repro.core.fragments import derive_fragments, fragment_sizes
from repro.core.incremental import IncrementalMaintainer
from repro.datasets.fooddb import (
    FOODDB_SEARCH_SQL,
    comment_schema,
    customer_schema,
    restaurant_schema,
)
from repro.datasets.workloads import zipf_keyword_queries, zipf_mutation_stream
from repro.db.database import Database
from repro.db.sqlparse import parse_psj_query
from repro.store import DiskStore, InMemoryStore, replace_op
from repro.webapp.application import WebApplication
from repro.webapp.request import QueryStringSpec

FRAGMENTS = int(os.environ.get("REPRO_BENCH_MAINT_FRAGMENTS", "1200"))
UPDATES = int(os.environ.get("REPRO_BENCH_MAINT_UPDATES", "320"))
BATCH = int(os.environ.get("REPRO_BENCH_MAINT_BATCH", "64"))
SKEW = float(os.environ.get("REPRO_BENCH_MAINT_SKEW", "1.1"))
K = 10
SIZE_THRESHOLD = 200

SPEC = QueryStringSpec((("c", "cuisine"), ("l", "min"), ("u", "max")))
URI = "www.example.com/Search"

_VOCABULARY = [f"dish{index:04d}" for index in range(900)]
_HOT_WORDS = ("burger", "noodle", "coffee", "curry")


def synthetic_database(fragment_target: int, seed: int = 7) -> Database:
    """A fooddb-shaped database whose query derives ~``fragment_target``
    fragments (distinct (cuisine, budget) pairs), with real comment text."""
    rng = random.Random(seed)
    budgets = list(range(5, 17))  # 12 budgets per cuisine chain
    cuisines = max(1, fragment_target // len(budgets))
    database = Database("maintdb")
    database.create_relation(restaurant_schema())
    database.create_relation(customer_schema())
    database.create_relation(comment_schema())
    customers = [(f"u{index:03d}", f"User{index:03d}") for index in range(60)]
    for row in customers:
        database.insert("customer", row)
    rid = 0
    cid = 0
    for cuisine_index in range(cuisines):
        cuisine = f"Cuisine{cuisine_index:04d}"
        for budget in budgets:
            rid += 1
            database.insert(
                "restaurant",
                (f"r{rid:06d}", f"Place {rid}", cuisine, budget, round(rng.uniform(2.0, 5.0), 1)),
            )
            for _ in range(rng.randint(1, 2)):
                cid += 1
                words = rng.sample(_VOCABULARY, rng.randint(4, 9))
                if rng.random() < 0.5:
                    words.append(rng.choice(_HOT_WORDS))
                database.insert(
                    "comment",
                    (
                        f"c{cid:06d}",
                        f"r{rid:06d}",
                        customers[rng.randrange(len(customers))][0],
                        " ".join(words),
                        "07/12",
                    ),
                )
    return database


class PerFragmentMaintainer(IncrementalMaintainer):
    """The seed-era write path, preserved as the measured baseline.

    Each refresh loops ``replace_fragment`` / ``remove_fragment`` one
    fragment at a time (on ``DiskStore``: one sqlite transaction per swap)
    and finalizes the index once per *update* — exactly what
    ``IncrementalMaintainer._refresh`` did before the batched overhaul.
    """

    def _refresh(self, identifiers) -> None:
        if not identifiers:
            return
        affected = set(identifiers)
        fragments = self._derive_restricted(affected)
        for identifier in affected:
            fragment = fragments.get(identifier)
            if fragment is None or fragment.size == 0 and fragment.record_count == 0:
                self.index.remove_fragment(identifier)
                if self.graph.has_fragment(identifier):
                    self.graph.remove_fragment(identifier)
                continue
            self.index.replace_fragment(identifier, fragment.term_frequencies)
            if self.graph.has_fragment(identifier):
                self.graph.update_keyword_count(identifier, fragment.size)
            else:
                self.graph.add_fragment(identifier, fragment.size)
        self.index.finalize()
        self.fragments_touched += len(affected)


def build_state(store, maintainer_cls, seed: int = 7):
    database = synthetic_database(FRAGMENTS, seed=seed)
    query = parse_psj_query(FOODDB_SEARCH_SQL, database, name="Search")
    fragments = derive_fragments(query, database)
    index = InvertedFragmentIndex.from_fragments(fragments, store=store)
    graph = FragmentGraph.build(query, fragment_sizes(fragments), store=index.store)
    maintainer = maintainer_cls(query, database, index, graph)
    return database, query, index, graph, maintainer


def probe_queries(index) -> List[List[str]]:
    frequencies = index.document_frequencies()
    ranked = sorted(frequencies, key=lambda keyword: (frequencies[keyword], keyword))
    return [
        [ranked[-1]],
        [ranked[len(ranked) // 2]],
        [ranked[-1], ranked[len(ranked) // 2], ranked[0]],
    ]


def ranked(searcher, query) -> Tuple:
    return tuple(
        (result.url, round(result.score, 9), result.fragments)
        for result in searcher.search(query, k=K, size_threshold=SIZE_THRESHOLD)
    )


def disk_store(tag: str) -> DiskStore:
    import tempfile

    return DiskStore(
        os.path.join(tempfile.mkdtemp(prefix=f"repro-bench-maint-{tag}-"), "store.sqlite")
    )


# ----------------------------------------------------------------------
# section 1: store-level mutation throughput (the acceptance metric)
# ----------------------------------------------------------------------
def record_fragment_ops(stream):
    """The exact per-fragment swap ops each update induces, recorded once.

    Replays the stream on a scratch in-memory state and captures, per
    update, the replace/remove ops the seed-era loop would issue — so both
    measured applications below push *identical* work through the store
    write path and the timing isolates per-fragment transactions vs one
    batch per chunk.
    """
    from repro.store import RemoveFragment

    _database, _query, index, _graph, recorder = build_state(
        InMemoryStore(), IncrementalMaintainer
    )
    per_update_ops = []
    for update in stream:
        affected = recorder.apply_updates([update])
        ops = []
        for identifier in affected:
            if index.store.has_fragment(identifier):
                ops.append(
                    replace_op(identifier, index.fragment_term_frequencies(identifier))
                )
            else:
                ops.append(RemoveFragment(identifier))
        per_update_ops.append(ops)
    return per_update_ops


def run_store_throughput() -> Dict:
    database = synthetic_database(FRAGMENTS)
    stream = list(
        zipf_mutation_stream(database, "comment", UPDATES, skew=SKEW, seed=19)
    )
    per_update_ops = record_fragment_ops(stream)
    total_ops = sum(len(ops) for ops in per_update_ops)

    from repro.core.search import TopKSearcher
    from repro.core.urls import UrlFormulator

    states = {}
    for tag in ("per-fragment", "batched"):
        _db, _q, index, graph, maintainer = build_state(
            disk_store(tag), IncrementalMaintainer
        )
        states[tag] = (
            index,
            TopKSearcher(index, graph, UrlFormulator(maintainer.query, SPEC, URI)),
        )
    legacy_index, legacy_searcher = states["per-fragment"]
    batched_index, batched_searcher = states["batched"]
    probes = probe_queries(legacy_index)

    legacy_seconds = 0.0
    batched_seconds = 0.0
    applied_ops = 0
    batches = 0
    parity_ok = True
    for start in range(0, len(per_update_ops), BATCH):
        chunk = per_update_ops[start : start + BATCH]
        # the seed-era loop: one replace (one disk transaction) per fragment,
        # one finalize per update
        begun = time.perf_counter()
        for ops in chunk:
            for op in ops:
                if hasattr(op, "term_frequencies"):
                    legacy_index.replace_fragment(
                        op.identifier, dict(op.term_frequencies)
                    )
                else:
                    legacy_index.remove_fragment(op.identifier)
            legacy_index.finalize()
        legacy_seconds += time.perf_counter() - begun
        # the batched path: every op of the chunk in one apply_mutations
        # round (repeated touches coalesce, one transaction on disk)
        flat = [op for ops in chunk for op in ops]
        begun = time.perf_counter()
        applied_ops += batched_index.apply_mutations(flat)
        batched_seconds += time.perf_counter() - begun
        batches += 1
        # parity at the shared stream position: byte-identical rankings
        for probe in probes:
            parity_ok = parity_ok and ranked(batched_searcher, probe) == ranked(
                legacy_searcher, probe
            )
    updates = len(per_update_ops)
    legacy_index.store.close()
    batched_index.store.close()
    return {
        "backend": "disk",
        "fragments": FRAGMENTS,
        "updates": updates,
        "swap_ops": total_ops,
        "batch_size": BATCH,
        "batches": batches,
        "per_fragment_seconds": round(legacy_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "per_fragment_updates_per_s": round(updates / legacy_seconds, 2),
        "batched_updates_per_s": round(updates / batched_seconds, 2),
        "speedup": round(legacy_seconds / batched_seconds, 2),
        "ops_applied_after_coalescing": applied_ops,
        "coalesced_op_ratio": round(total_ops / max(1, applied_ops), 2),
        "parity_ok": parity_ok,
    }


# ----------------------------------------------------------------------
# section 2: end-to-end maintenance throughput, per-update vs batched
# ----------------------------------------------------------------------
def run_throughput(backend: str) -> Dict:
    factory = InMemoryStore if backend == "memory" else lambda: disk_store(backend)

    # --- baseline: the per-fragment loop, one update per round
    database = synthetic_database(FRAGMENTS)
    stream = list(
        zipf_mutation_stream(database, "comment", UPDATES, skew=SKEW, seed=19)
    )
    _db, _q, index, _g, legacy = build_state(factory(), PerFragmentMaintainer)
    del _db, _q, _g
    started = time.perf_counter()
    for update in stream:
        legacy.apply_updates([update])
    legacy_seconds = time.perf_counter() - started
    legacy_touched = legacy.fragments_touched
    index.store.close()

    # --- measured path: apply_updates over BATCH-sized chunks
    _db, _q, index, _g, batched = build_state(factory(), IncrementalMaintainer)
    del _db, _q, _g
    searcher_store = index.store
    from repro.core.search import TopKSearcher
    from repro.core.urls import UrlFormulator

    searcher = TopKSearcher(
        index, batched.graph, UrlFormulator(batched.query, SPEC, URI)
    )
    # lock-step oracle: the same chunks through the per-fragment path in
    # memory — after every applied batch the measured store must rank
    # byte-identically (parity between batch boundaries is meaningless by
    # construction: the batch is the atomic unit)
    _odb, _oq, oracle_index, _og, oracle = build_state(InMemoryStore(), PerFragmentMaintainer)
    del _odb, _oq, _og
    oracle_searcher = TopKSearcher(
        oracle_index, oracle.graph, UrlFormulator(oracle.query, SPEC, URI)
    )
    probes = probe_queries(index)
    parity_ok = ranked(searcher, probes[0]) == ranked(oracle_searcher, probes[0])

    batched_seconds = 0.0
    batches = 0
    for start in range(0, len(stream), BATCH):
        chunk = stream[start : start + BATCH]
        begun = time.perf_counter()
        batched.apply_updates(chunk)
        batched_seconds += time.perf_counter() - begun
        batches += 1
        for update in chunk:  # untimed: bring the oracle to the same boundary
            oracle.apply_updates([update])
        for probe in probes:
            parity_ok = parity_ok and ranked(searcher, probe) == ranked(
                oracle_searcher, probe
            )
    batched_touched = batched.fragments_touched
    searcher_store.close()

    return {
        "backend": backend,
        "fragments": FRAGMENTS,
        "updates": len(stream),
        "batch_size": BATCH,
        "batches": batches,
        "per_fragment_seconds": round(legacy_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "per_fragment_updates_per_s": round(len(stream) / legacy_seconds, 2),
        "batched_updates_per_s": round(len(stream) / batched_seconds, 2),
        "speedup": round(legacy_seconds / batched_seconds, 2),
        "fragments_touched_per_fragment_path": legacy_touched,
        "fragments_touched_batched": batched_touched,
        "coalesced_touch_ratio": round(legacy_touched / max(1, batched_touched), 2),
        "parity_ok": parity_ok,
    }


# ----------------------------------------------------------------------
# section 2: read latency while the writer is applying
# ----------------------------------------------------------------------
def run_read_latency_while_writing() -> Dict:
    import tempfile

    path = os.path.join(
        tempfile.mkdtemp(prefix="repro-bench-maint-serve-"), "store.sqlite"
    )
    database = synthetic_database(FRAGMENTS)
    application = WebApplication(
        name="Search",
        uri=URI,
        query=parse_psj_query(FOODDB_SEARCH_SQL, database, name="Search"),
        query_string_spec=SPEC,
    )
    engine = DashEngine.build(
        application, database, analyze_source=False, store="disk", store_path=path
    )
    # cache off: every request exercises the full gated read path
    service = engine.serving(
        cache_size=0, workers=1, default_k=K, default_size_threshold=SIZE_THRESHOLD,
        maintenance=True, maintenance_batch=BATCH, maintenance_delay_seconds=0.002,
    )
    workload = zipf_keyword_queries(
        engine.index.document_frequencies(), count=60, skew=SKEW,
        keywords_per_query=(1, 2), seed=29,
    )
    queries = list(workload)

    def measure_pass() -> List[float]:
        latencies = []
        for keywords in queries:
            begun = time.perf_counter()
            service.search(keywords)
            latencies.append(time.perf_counter() - begun)
        return latencies

    measure_pass()  # warm the session/scorer caches
    idle = measure_pass()

    stream = list(
        zipf_mutation_stream(database, "comment", UPDATES, skew=SKEW, seed=31)
    )
    maintenance = service.maintenance
    feeder_done = threading.Event()

    def feed() -> None:
        for update in stream:
            maintenance.submit(update)
            time.sleep(0.0005)
        feeder_done.set()

    feeder = threading.Thread(target=feed)
    feeder.start()
    busy: List[float] = []
    while not (feeder_done.is_set() and maintenance.statistics()["pending"] == 0):
        busy.extend(measure_pass())
        if len(busy) > 20 * len(queries):
            break  # safety valve on very slow machines
    feeder.join()
    maintenance.flush(timeout=60)

    # parity: the served post-stream results must match a fresh engine
    parity_ok = True
    fresh = InvertedFragmentIndex.from_fragments(
        derive_fragments(engine.application.query, database)
    )
    from repro.core.fragment_graph import FragmentGraph as _Graph
    from repro.core.search import TopKSearcher
    from repro.core.urls import UrlFormulator

    fresh_graph = _Graph.build(
        engine.application.query, fresh.fragment_sizes, store=fresh.store
    )
    fresh_searcher = TopKSearcher(
        fresh, fresh_graph, UrlFormulator(engine.application.query, SPEC, URI)
    )
    for keywords in list(dict.fromkeys(queries))[:20]:
        served = service.search(keywords)
        reference = fresh_searcher.search(
            list(keywords), k=K, size_threshold=SIZE_THRESHOLD
        )
        parity_ok = parity_ok and [r.url for r in served.results] == [
            r.url for r in reference
        ]
    statistics = maintenance.statistics()
    service.close()
    engine.store.close()
    return {
        "fragments": FRAGMENTS,
        "queries_per_pass": len(queries),
        "idle": summarize_latencies(idle),
        "while_writing": summarize_latencies(busy),
        "batches_applied": statistics["batches_applied"],
        "updates_applied": statistics["updates_applied"],
        "mean_batch_size": round(statistics["mean_batch_size"], 2),
        "p95_slowdown_while_writing": round(
            summarize_latencies(busy)["p95_ms"] / summarize_latencies(idle)["p95_ms"], 2
        ),
        "parity_ok": parity_ok,
    }


# ----------------------------------------------------------------------
def run_benchmark() -> Dict:
    store_throughput = run_store_throughput()
    end_to_end = [run_throughput("memory"), run_throughput("disk")]
    serving = run_read_latency_while_writing()
    payload = {
        "fragments": FRAGMENTS,
        "updates": UPDATES,
        "batch_size": BATCH,
        "zipf_skew": SKEW,
        "mutation_throughput": store_throughput,
        "end_to_end_maintenance": end_to_end,
        "read_latency_while_writing": serving,
    }
    print_table(
        ["backend", "swap ops", "per-fragment (u/s)", "batched (u/s)", "speedup",
         "op coalescing", "parity"],
        [
            (
                store_throughput["backend"],
                store_throughput["swap_ops"],
                store_throughput["per_fragment_updates_per_s"],
                store_throughput["batched_updates_per_s"],
                store_throughput["speedup"],
                store_throughput["coalesced_op_ratio"],
                "ok" if store_throughput["parity_ok"] else "MISMATCH",
            )
        ],
        title=(
            f"Store mutation throughput: apply_mutations batches vs the "
            f"per-fragment replace loop ({UPDATES} Zipf updates, batches of "
            f"{BATCH} updates, {FRAGMENTS} fragments)"
        ),
    )
    print_table(
        ["backend", "per-fragment (u/s)", "batched (u/s)", "speedup",
         "touch ratio", "parity"],
        [
            (
                row["backend"],
                row["per_fragment_updates_per_s"],
                row["batched_updates_per_s"],
                row["speedup"],
                row["coalesced_touch_ratio"],
                "ok" if row["parity_ok"] else "MISMATCH",
            )
            for row in end_to_end
        ],
        title=(
            "End-to-end maintenance (affected-set join included in both "
            "paths)"
        ),
    )
    print_table(
        ["pass", "p50 (ms)", "p95 (ms)", "throughput (q/s)"],
        [
            ("idle", round(serving["idle"]["p50_ms"], 3),
             round(serving["idle"]["p95_ms"], 3),
             round(serving["idle"]["throughput_qps"], 1)),
            ("while writing", round(serving["while_writing"]["p50_ms"], 3),
             round(serving["while_writing"]["p95_ms"], 3),
             round(serving["while_writing"]["throughput_qps"], 1)),
        ],
        title=(
            f"Disk-backed read latency while {serving['updates_applied']} updates "
            f"applied in {serving['batches_applied']} background batches "
            f"(parity {'ok' if serving['parity_ok'] else 'MISMATCH'})"
        ),
    )
    path = write_json("BENCH_maintenance.json", payload)
    print(f"\nwrote {path}")
    return payload


def test_maintenance_benchmark(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    # every applied batch ranked byte-identically to the per-fragment oracle
    store_throughput = payload["mutation_throughput"]
    assert store_throughput["parity_ok"]
    assert all(row["parity_ok"] for row in payload["end_to_end_maintenance"])
    assert payload["read_latency_while_writing"]["parity_ok"]
    # acceptance: >= 3x batched mutation throughput on DiskStore at >= 1k
    # fragments (the floor only binds at full scale; tiny smoke corpora
    # amortize too little per transaction to gate on — there the floor is a
    # conservative 1.5x)
    if FRAGMENTS >= 1000:
        assert store_throughput["speedup"] >= 3.0, store_throughput
    else:
        assert store_throughput["speedup"] >= 1.5, store_throughput
    # the Zipf stream must actually coalesce repeated fragment touches
    assert store_throughput["coalesced_op_ratio"] > 1.0
    # end-to-end batching must never regress below the per-update loop
    # (generous floor: the affected-set join dominates both paths, and CI
    # machines are noisy)
    for row in payload["end_to_end_maintenance"]:
        assert row["speedup"] >= 0.9, row
    # background batches really ran while reads were measured
    assert payload["read_latency_while_writing"]["batches_applied"] >= 2


if __name__ == "__main__":
    run_benchmark()
