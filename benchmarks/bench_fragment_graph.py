"""Table IV: fragment-graph building performance.

The paper reports, per application query on the medium dataset: the graph
building time (on a single computer), the number of db-page fragments and the
average number of keywords per fragment.  The benchmark derives the fragments
for Q1/Q2/Q3 on the medium dataset, times the graph construction and prints
the three Table IV columns.  An extra benchmark compares the paper's
pre-sorting optimisation against naive incremental insertion.
"""

import pytest

from repro.bench.reporting import print_table
from repro.core.fragment_graph import FragmentGraph
from repro.core.fragments import average_keywords_per_fragment, derive_fragments, fragment_sizes


@pytest.fixture(scope="module")
def medium_fragments(tpch_databases, tpch_query_sets):
    """Reference fragments of Q1/Q2/Q3 on the medium dataset."""
    database = tpch_databases["medium"]
    return {
        name: derive_fragments(query, database)
        for name, query in tpch_query_sets["medium"].items()
    }


@pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3"])
def test_table4_fragment_graph_building(benchmark, tpch_query_sets, medium_fragments, query_name):
    query = tpch_query_sets["medium"][query_name]
    fragments = medium_fragments[query_name]
    sizes = fragment_sizes(fragments)

    graph = benchmark(FragmentGraph.build, query, sizes, True)

    average = average_keywords_per_fragment(fragments)
    benchmark.extra_info.update(
        {"fragments": len(fragments), "average_keywords": round(average, 1), "edges": graph.edge_count}
    )
    print_table(
        ["query", "#db-page fragments", "average #keywords", "graph edges"],
        [(query_name, len(fragments), round(average, 1), graph.edge_count)],
        title="Table IV (reproduced): fragment graph building",
    )

    assert graph.fragment_count == len(fragments)
    # Q2 and Q3 share their fragment identifiers (same selection attributes),
    # while Q3 joins one more relation so its fragments carry more keywords —
    # the relationship Table IV shows.
    if query_name == "Q3":
        q2_average = average_keywords_per_fragment(medium_fragments["Q2"])
        assert len(medium_fragments["Q2"]) == len(fragments)
        assert average > q2_average
    if query_name in ("Q2", "Q3"):
        assert len(fragments) > len(medium_fragments["Q1"])


def test_table4_presorted_vs_incremental_insertion(benchmark, tpch_query_sets, medium_fragments):
    """The paper's optimisation: pre-sorting fragments before insertion saves
    comparisons; check it and time the (cheaper) pre-sorted construction."""
    query = tpch_query_sets["medium"]["Q1"]
    sizes = fragment_sizes(medium_fragments["Q1"])

    presorted = benchmark(FragmentGraph.build, query, sizes, True)
    incremental = FragmentGraph.build(query, sizes, presorted=False)

    print_table(
        ["construction", "comparisons", "edges"],
        [
            ("pre-sorted", presorted.comparisons, presorted.edge_count),
            ("incremental", incremental.comparisons, incremental.edge_count),
        ],
        title="Fragment-graph construction: pre-sorted vs incremental insertion",
    )
    assert presorted.comparisons < incremental.comparisons
    assert presorted.edge_count == incremental.edge_count
